// Cardinality estimation over the unbound AST: selectivity of single-table
// predicates from rel::TableStats (equi-depth histograms, NDVs, null
// fractions), equi-join output cardinality from per-side NDVs, and the
// per-row cost constants the optimizer charges plan alternatives with.
// Estimates only steer plan choice — every candidate plan the optimizer
// emits is byte-identical in results to the rule-driven plan, so a bad
// estimate can cost time, never correctness.

#ifndef INSIGHTNOTES_SQL_CARD_EST_H_
#define INSIGHTNOTES_SQL_CARD_EST_H_

#include "rel/schema.h"
#include "rel/stats.h"
#include "sql/ast.h"

namespace insightnotes::sql {

/// Fallback selectivities when ANALYZE has not run (or a column has no
/// distribution). Pinned by sql/card_est_test.
inline constexpr double kDefaultEqSelectivity = 0.1;
inline constexpr double kDefaultRangeSelectivity = 0.3;
inline constexpr double kDefaultUnknownSelectivity = 0.5;

/// Estimated fraction of `schema`'s rows satisfying `pred` (a single-table
/// predicate). Handles <column> <op> <literal> comparisons (either side),
/// AND / OR / NOT compositions, and falls back to the defaults above for
/// anything it cannot see through. Always in [0, 1]. `stats` may be null.
double EstimateSelectivity(const AstExpr& pred, const rel::Schema& schema,
                           const rel::TableStats* stats);

/// NDV of column `name` per `stats`; `fallback` when the column is unknown
/// or unanalyzed. Never below 1.
double ColumnNdv(const rel::Schema& schema, const std::string& name,
                 const rel::TableStats* stats, double fallback);

/// Equi-join output cardinality: |L| * |R| / max(ndv_left, ndv_right)
/// (containment-of-values assumption). NDVs are clamped to their side's
/// row count first.
double EstimateJoinRows(double left_rows, double right_rows, double left_ndv,
                        double right_ndv);

/// Per-row charges of the cost model, in arbitrary units (~ one per-tuple
/// function call). Relative magnitudes are what matters: an index probe
/// has a fixed setup charge but fetches only matching rows; hash-join
/// builds cost more per row than probes; RestoreOrder charges every
/// reordered output row for the final sort.
struct CostModel {
  double seq_row = 1.0;       // Scan + materialize one row.
  double index_probe = 8.0;   // Fixed charge per index probe.
  double index_row = 1.2;     // Fetch one matching row through the index.
  double build_row = 2.0;     // Insert one row into a hash-join build.
  double probe_row = 1.0;     // Probe one row against a build.
  double output_row = 0.5;    // Emit one intermediate row.
  double restore_row = 1.5;   // Sort one row back into canonical order.
  double cross_row = 2.0;     // Nested-loop cross product, per row pair.
};

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_CARD_EST_H_
