#include "sql/binder.h"

namespace insightnotes::sql {

Result<rel::ExprPtr> Bind(const AstExpr& expr, const rel::Schema& schema) {
  switch (expr.kind) {
    case AstExpr::Kind::kColumn: {
      INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(expr.name));
      return rel::MakeColumn(index, expr.name);
    }
    case AstExpr::Kind::kLiteral:
      return rel::MakeLiteral(expr.value);
    case AstExpr::Kind::kCompare: {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr left, Bind(*expr.left, schema));
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr right, Bind(*expr.right, schema));
      return rel::MakeCompare(expr.compare_op, std::move(left), std::move(right));
    }
    case AstExpr::Kind::kLogical: {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr left, Bind(*expr.left, schema));
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr right, Bind(*expr.right, schema));
      return expr.logical_op == rel::LogicalOp::kAnd
                 ? rel::MakeAnd(std::move(left), std::move(right))
                 : rel::MakeOr(std::move(left), std::move(right));
    }
    case AstExpr::Kind::kNot: {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr inner, Bind(*expr.left, schema));
      return rel::MakeNot(std::move(inner));
    }
    case AstExpr::Kind::kArithmetic: {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr left, Bind(*expr.left, schema));
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr right, Bind(*expr.right, schema));
      return rel::MakeArithmetic(expr.arith_op, std::move(left), std::move(right));
    }
    case AstExpr::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate functions are only allowed in the SELECT list");
    case AstExpr::Kind::kSummaryCount:
      return Status::InvalidArgument(
          "SUMMARY_COUNT is only allowed as a top-level WHERE conjunct "
          "(SUMMARY_COUNT(...) <op> <integer>) or as an ORDER BY key");
  }
  return Status::Internal("unknown AST expression kind");
}

}  // namespace insightnotes::sql
