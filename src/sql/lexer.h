// SQL lexer: case-insensitive keywords, 'single-quoted' strings with ''
// escaping, integer/float literals, identifiers and operator symbols.

#ifndef INSIGHTNOTES_SQL_LEXER_H_
#define INSIGHTNOTES_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace insightnotes::sql {

enum class TokenType {
  kIdentifier,   // Unquoted name (normalized case preserved).
  kKeyword,      // Recognized keyword (upper-cased text).
  kInteger,
  kFloat,
  kString,       // Quote-stripped, escapes resolved.
  kSymbol,       // Operators and punctuation: , ( ) . * = != <> <= ...
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // Keyword: upper-case; symbol: literal; etc.
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;   // Byte offset in the input (for error messages).
};

/// True if `word` (any case) is a reserved keyword.
bool IsKeyword(std::string_view word);

/// Tokenizes `sql`; the last token is always kEnd.
Result<std::vector<Token>> Lex(std::string_view sql);

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_LEXER_H_
