// Cost-based plan search. Given the FROM tables (with their single-table
// conjuncts and ANALYZE statistics), the equi-join conjuncts, and the
// morsel size, picks:
//
//   * an access path per table — full scan, or an index probe over an
//     existing rel::OrderedIndex when a selective equality/range conjunct
//     makes it cheaper (the original predicate always stays as a residual
//     filter, so the probe only has to over-approximate);
//   * a left-deep join order — exhaustive permutation search for up to 6
//     tables, greedy beyond — where non-identity orders are admitted only
//     when every FROM table has ANALYZE statistics (defaults are not
//     evidence), every step is connected by an equi conjunct (no cross
//     products)
//     and tables carrying annotations or linked summary instances keep
//     their FROM-relative order (which keeps merged summary objects and
//     attachment metadata byte-identical; see DESIGN.md);
//   * the parallelism degree — a driver whose access path materializes
//     fewer rows than one morsel plans serial.
//
// A reordered plan pays a RestoreOrder charge for sorting its output back
// into canonical FROM order, so reordering only wins when the join-size
// reduction covers that sort. The identity order is always a candidate:
// the optimizer can never do worse than the rule-driven plan by more than
// an estimation error, and never differs from it in results.

#ifndef INSIGHTNOTES_SQL_OPTIMIZER_H_
#define INSIGHTNOTES_SQL_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/index_scan.h"
#include "rel/stats.h"
#include "rel/table.h"
#include "sql/ast.h"
#include "sql/card_est.h"

namespace insightnotes::sql {

/// One FROM slot as the optimizer sees it.
struct OptimizerTable {
  const rel::Table* table = nullptr;
  rel::Schema schema;  // Aliased.
  std::shared_ptr<const rel::TableStats> stats;  // Null until ANALYZE.
  std::vector<const AstExpr*> filters;  // Single-table conjuncts.
  /// True when the table has linked summary instances or stored
  /// annotations: such tables must keep their FROM-relative order.
  bool annotated = false;
};

/// One equi-join conjunct between exactly two FROM slots.
struct OptimizerJoin {
  size_t left_table = 0;
  std::string left_column;  // Column name as written (possibly qualified).
  size_t right_table = 0;
  std::string right_column;
};

/// Chosen access path of one FROM slot.
struct AccessPath {
  bool use_index = false;
  exec::IndexProbeSpec probe;  // Valid when use_index.
  double scan_rows = 0;  // Rows the access path materializes.
  double est_rows = 0;   // Rows surviving all of the slot's filters.
  double cost = 0;
};

struct PlanChoice {
  std::vector<size_t> join_order;  // Permutation of FROM slots.
  bool reordered = false;          // join_order != identity.
  std::vector<AccessPath> access;  // Indexed by FROM slot.
  /// Estimated cumulative cardinality after each join step, indexed by
  /// join-order position (entry 0 = the driver's post-filter rows).
  std::vector<double> rows_after_step;
  double est_result_rows = 0;
  double total_cost = 0;
  /// True when the driver's access path materializes fewer rows than one
  /// morsel: the parallel section would dispatch a single morsel, so the
  /// planner emits the serial tree.
  bool serial = false;
};

PlanChoice ChoosePlan(const std::vector<OptimizerTable>& tables,
                      const std::vector<OptimizerJoin>& joins,
                      size_t morsel_size, const CostModel& cost = {});

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_OPTIMIZER_H_
