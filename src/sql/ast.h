// Unbound SQL AST produced by the parser and consumed by the binder and
// planner. Expressions hold column *names*; the binder resolves them to
// positions against the schema in scope.

#ifndef INSIGHTNOTES_SQL_AST_H_
#define INSIGHTNOTES_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "exec/aggregate.h"
#include "rel/expression.h"
#include "rel/value.h"

namespace insightnotes::sql {

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

/// One expression node. A tagged struct rather than a class hierarchy: the
/// AST is short-lived and visited in exactly two places (binder, planner).
struct AstExpr {
  enum class Kind {
    kColumn,      // name ("a" or "r.a").
    kLiteral,     // value.
    kCompare,     // op, left, right.
    kLogical,     // logical_op, left, right.
    kNot,         // left.
    kArithmetic,  // arith_op, left, right.
    kAggregate,   // agg_fn, left (argument; null for COUNT(*)).
    kSummaryCount,  // name (instance), value (component label or NULL).
  };

  Kind kind;
  std::string name;
  rel::Value value;
  rel::CompareOp compare_op = rel::CompareOp::kEq;
  rel::LogicalOp logical_op = rel::LogicalOp::kAnd;
  rel::ArithmeticOp arith_op = rel::ArithmeticOp::kAdd;
  exec::AggregateFunction agg_fn = exec::AggregateFunction::kCountStar;
  AstExprPtr left;
  AstExprPtr right;

  bool ContainsAggregate() const {
    if (kind == Kind::kAggregate) return true;
    if (left != nullptr && left->ContainsAggregate()) return true;
    return right != nullptr && right->ContainsAggregate();
  }

  /// Appends all referenced column names.
  void CollectColumns(std::vector<std::string>* out) const {
    if (kind == Kind::kColumn) out->push_back(name);
    if (left != nullptr) left->CollectColumns(out);
    if (right != nullptr) right->CollectColumns(out);
  }
};

struct SelectItem {
  AstExprPtr expr;    // Null means '*'.
  std::string alias;  // Optional output name.
};

struct TableRef {
  std::string table;
  std::string alias;  // Defaults to the table name.
};

struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;                    // May be null.
  std::vector<AstExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

struct CreateTableStatement {
  std::string table;
  std::vector<std::pair<std::string, rel::ValueType>> columns;
};

struct InsertStatement {
  std::string table;
  std::vector<std::vector<rel::Value>> rows;  // Literal tuples only.
};

struct AnnotateStatement {
  std::string table;
  rel::RowId row = 0;
  std::vector<std::string> columns;  // Column names; empty = whole row.
  std::string body;
  std::string author;  // Empty = default.
  bool is_document = false;
  std::string title;
};

struct ZoomInStatement {
  uint64_t qid = 0;
  AstExprPtr where;  // May be null.
  std::string instance;
  size_t index = 0;  // 1-based in the syntax (Figure 3), stored 0-based.
};

struct CreateInstanceStatement {
  enum class Type { kClassifier, kCluster, kSnippet };
  std::string name;
  Type type = Type::kClassifier;
  std::vector<std::string> labels;     // Classifier.
  double threshold = 0.35;             // Cluster.
  size_t snippet_sentences = 2;        // Snippet.
  size_t snippet_chars = 200;
};

struct TrainInstanceStatement {
  std::string instance;
  std::string label;
  std::string text;
};

struct LinkStatement {
  std::string instance;
  std::string table;
  bool link = true;  // False = UNLINK.
};

/// SET <name> = <integer> — session knob (e.g. SET PARALLELISM = 8).
struct SetStatement {
  std::string name;
  int64_t value = 0;
};

/// EXPLAIN [ANALYZE] <select | zoomin>. Plain EXPLAIN prints the plan
/// shape (for zoom-in: the serve path and result-cache state without
/// executing); ANALYZE executes and prints per-operator metrics (for
/// zoom-in: the outcome plus the shared result cache's statistics).
struct ExplainStatement {
  bool analyze = false;
  bool is_zoom_in = false;
  SelectStatement select;  // Valid when !is_zoom_in.
  ZoomInStatement zoom_in;  // Valid when is_zoom_in.
};

/// ANALYZE <table> — collect optimizer statistics (rel/stats.h).
struct AnalyzeStatement {
  std::string table;
};

/// CREATE INDEX ON <table> ( <column> ) — ordered secondary index used by
/// the optimizer's index-backed access paths.
struct CreateIndexStatement {
  std::string table;
  std::string column;
};

using Statement =
    std::variant<SelectStatement, CreateTableStatement, InsertStatement,
                 AnnotateStatement, ZoomInStatement, CreateInstanceStatement,
                 TrainInstanceStatement, LinkStatement, SetStatement,
                 ExplainStatement, AnalyzeStatement, CreateIndexStatement>;

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_AST_H_
