// Binder: resolves AST expressions against a schema, lowering them to
// bound rel::Expression trees (column names -> positions).

#ifndef INSIGHTNOTES_SQL_BINDER_H_
#define INSIGHTNOTES_SQL_BINDER_H_

#include "common/result.h"
#include "rel/expression.h"
#include "rel/schema.h"
#include "sql/ast.h"

namespace insightnotes::sql {

/// Lowers `expr` against `schema`. Aggregate nodes are rejected here — the
/// planner splits them out before binding (they evaluate over groups, not
/// single tuples).
Result<rel::ExprPtr> Bind(const AstExpr& expr, const rel::Schema& schema);

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_BINDER_H_
