// Recursive-descent parser for the InsightNotes SQL dialect:
//
//   SELECT [DISTINCT] items FROM t [alias] (, t [alias])*
//     [WHERE expr] [GROUP BY exprs] [ORDER BY exprs [ASC|DESC]] [LIMIT n]
//   CREATE TABLE t (col TYPE, ...)
//   INSERT INTO t VALUES (...), (...)
//   ANNOTATE t ROW n [COLUMNS (c, ...)] TEXT 'body' [AUTHOR 'a']
//     [AS DOCUMENT [TITLE 't']]
//   ZOOMIN REFERENCE QID n [WHERE expr] ON instance INDEX k     (Figure 3)
//   CREATE SUMMARY INSTANCE name CLASSIFIER LABELS ('a', 'b', ...)
//   CREATE SUMMARY INSTANCE name CLUSTER [THRESHOLD x]
//   CREATE SUMMARY INSTANCE name SNIPPET
//   TRAIN SUMMARY name LABEL 'l' WITH 'example text'
//   LINK SUMMARY name TO t   |   UNLINK SUMMARY name FROM t

#ifndef INSIGHTNOTES_SQL_PARSER_H_
#define INSIGHTNOTES_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace insightnotes::sql {

/// Parses one statement (a trailing ';' is allowed).
Result<Statement> Parse(std::string_view sql);

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_PARSER_H_
