// SqlSession: executes InsightNotes SQL statements against an Engine —
// the layer InsightNotesGate (the GUI of Figure 5; here, the interactive
// shell example) talks to.

#ifndef INSIGHTNOTES_SQL_SESSION_H_
#define INSIGHTNOTES_SQL_SESSION_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "core/engine.h"
#include "sql/planner.h"

namespace insightnotes::sql {

/// The outcome of one statement.
struct ExecutionOutput {
  enum class Kind { kRows, kZoomIn, kMessage };
  Kind kind = Kind::kMessage;
  core::QueryResult result;   // kRows.
  core::ZoomInResult zoom;    // kZoomIn.
  std::string message;        // kMessage (DDL acknowledgements etc.).
};

class SqlSession {
 public:
  /// `engine` must outlive the session. The session's parallelism knob
  /// starts at `planner_options.parallelism` when that is explicit (> 1),
  /// otherwise at the hardware concurrency; SET PARALLELISM = N adjusts it
  /// (1 = legacy serial plans).
  explicit SqlSession(core::Engine* engine, PlannerOptions planner_options = {})
      : engine_(engine),
        planner_options_(planner_options),
        parallelism_(planner_options.parallelism > 1
                         ? planner_options.parallelism
                         : std::max<size_t>(1, std::thread::hardware_concurrency())) {}

  /// Parses, plans and executes one statement. With `trace` non-null,
  /// SELECTs record per-operator tuple flow (traced queries always plan
  /// serially so events arrive in the legacy order).
  Result<ExecutionOutput> Execute(std::string_view sql,
                                  std::vector<core::TraceEvent>* trace = nullptr);

  core::Engine* engine() { return engine_; }

  size_t parallelism() const { return parallelism_; }

 private:
  core::Engine* engine_;
  PlannerOptions planner_options_;
  size_t parallelism_;
};

/// Renders a result table ("a | b\n1 | x\n...") with one trailing summary
/// column per tuple; used by the shell and examples.
std::string FormatResult(const core::QueryResult& result, bool show_summaries = true);

/// Renders a zoom-in result for display.
std::string FormatZoomIn(const core::ZoomInResult& zoom);

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_SESSION_H_
