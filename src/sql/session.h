// SqlSession: executes InsightNotes SQL statements against an Engine —
// the layer InsightNotesGate (the GUI of Figure 5; here, the interactive
// shell example) talks to.

#ifndef INSIGHTNOTES_SQL_SESSION_H_
#define INSIGHTNOTES_SQL_SESSION_H_

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "core/engine.h"
#include "exec/query_context.h"
#include "sql/planner.h"

namespace insightnotes::sql {

/// The outcome of one statement.
struct ExecutionOutput {
  enum class Kind { kRows, kZoomIn, kMessage };
  Kind kind = Kind::kMessage;
  core::QueryResult result;   // kRows.
  core::ZoomInResult zoom;    // kZoomIn.
  std::string message;        // kMessage (DDL acknowledgements etc.).
};

class SqlSession {
 public:
  /// `engine` must outlive the session. The session's parallelism knob
  /// starts at `planner_options.parallelism` when that is explicit (> 1),
  /// otherwise at the hardware concurrency; SET PARALLELISM = N adjusts it
  /// (1 = legacy serial plans).
  explicit SqlSession(core::Engine* engine, PlannerOptions planner_options = {})
      : engine_(engine),
        planner_options_(planner_options),
        parallelism_(planner_options.parallelism > 1
                         ? planner_options.parallelism
                         : std::max<size_t>(1, std::thread::hardware_concurrency())),
        ns_(engine->NewSessionNamespace()),
        context_(std::make_shared<exec::QueryContext>()) {}

  /// Parses, plans and executes one statement. With `trace` non-null,
  /// SELECTs record per-operator tuple flow (traced queries always plan
  /// serially so events arrive in the legacy order).
  ///
  /// Every SELECT / EXPLAIN re-arms the session's QueryContext: the
  /// statement runs under `SET STATEMENT_TIMEOUT` / `SET MEMORY_LIMIT` and
  /// can be aborted mid-flight with CancelCurrent().
  Result<ExecutionOutput> Execute(std::string_view sql,
                                  std::vector<core::TraceEvent>* trace = nullptr);

  /// Requests cancellation of the statement currently executing (from
  /// another thread); it unwinds with kCancelled at its next cooperative
  /// interrupt check. A no-op between statements (Execute re-arms the
  /// flag).
  void CancelCurrent() { context_->Cancel(); }

  core::Engine* engine() { return engine_; }

  size_t parallelism() const { return parallelism_; }
  bool optimizer_enabled() const { return optimizer_enabled_; }
  int64_t statement_timeout_ms() const { return statement_timeout_ms_; }
  size_t memory_limit_bytes() const { return memory_limit_bytes_; }

  /// The per-statement lifecycle state (test seam: CancelAtCheck,
  /// cancel_checks, budget peaks).
  const std::shared_ptr<exec::QueryContext>& query_context() { return context_; }

  /// This session's QID namespace. The engine's first session (namespace 0)
  /// keeps the legacy engine-assigned ids (101, 102, ...) so single-session
  /// callers see unchanged QIDs; later sessions mint their own ids under a
  /// disjoint high-bits prefix, so concurrent sessions never collide in the
  /// query registry or the zoom-in cache.
  uint64_t session_namespace() const { return ns_; }

 private:
  /// Next statement id in this session's namespace; 0 defers to the
  /// engine's global counter (namespace-0 sessions).
  core::QueryId NextQid() {
    return ns_ == 0 ? 0 : (ns_ << 48) | ++local_qid_;
  }

  core::Engine* engine_;
  PlannerOptions planner_options_;
  size_t parallelism_;
  uint64_t ns_;
  /// Per-session statement counter; starts where the engine's global
  /// counter does, so namespaced QIDs read NS<<48 | 101, 102, ...
  core::QueryId local_qid_ = 100;
  /// Cost-based optimization for SELECT / EXPLAIN; `SET OPTIMIZER = OFF`
  /// restores the rule-driven plans (results are identical either way).
  bool optimizer_enabled_ = true;
  int64_t statement_timeout_ms_ = 0;  // 0 = no deadline.
  size_t memory_limit_bytes_ = 0;     // 0 = unlimited.
  std::shared_ptr<exec::QueryContext> context_;
};

/// Renders a result table ("a | b\n1 | x\n...") with one trailing summary
/// column per tuple; used by the shell and examples.
std::string FormatResult(const core::QueryResult& result, bool show_summaries = true);

/// Renders a zoom-in result for display.
std::string FormatZoomIn(const core::ZoomInResult& zoom);

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_SESSION_H_
