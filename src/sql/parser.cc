#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace insightnotes::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (AtKeyword("SELECT")) return ParseSelect();
    if (AtKeyword("EXPLAIN")) return ParseExplain();
    if (AtKeyword("SET")) return ParseSet();
    if (AtKeyword("INSERT")) return ParseInsert();
    if (AtKeyword("ANNOTATE")) return ParseAnnotate();
    if (AtKeyword("ZOOMIN")) return ParseZoomIn();
    if (AtKeyword("TRAIN")) return ParseTrain();
    if (AtKeyword("LINK") || AtKeyword("UNLINK")) return ParseLink();
    if (AtKeyword("ANALYZE")) return ParseAnalyze();
    if (AtKeyword("CREATE")) {
      if (PeekKeyword(1, "TABLE")) return ParseCreateTable();
      if (PeekKeyword(1, "SUMMARY")) return ParseCreateInstance();
      if (PeekKeyword(1, "INDEX")) return ParseCreateIndex();
      return Error("expected TABLE, SUMMARY or INDEX after CREATE");
    }
    return Error("unrecognized statement");
  }

  Status Finish() {
    // Optional ';' terminator.
    if (AtSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("trailing input after statement: '" + Peek().text +
                                "'");
    }
    return Status::OK();
  }

 private:
  // --- Token helpers --------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  bool AtKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool PeekKeyword(size_t ahead, std::string_view kw) const {
    return Peek(ahead).type == TokenType::kKeyword && Peek(ahead).text == kw;
  }
  bool AtSymbol(std::string_view s) const {
    return Peek().type == TokenType::kSymbol && Peek().text == s;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool ConsumeSymbol(std::string_view s) {
    if (!AtSymbol(s)) return false;
    Advance();
    return true;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (ConsumeKeyword(kw)) return Status::OK();
    return Status::ParseError("expected " + std::string(kw) + " but found '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().position));
  }
  Status ExpectSymbol(std::string_view s) {
    if (ConsumeSymbol(s)) return Status::OK();
    return Status::ParseError("expected '" + std::string(s) + "' but found '" +
                              Peek().text + "' at offset " +
                              std::to_string(Peek().position));
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier but found '" + Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<std::string> ExpectString() {
    if (Peek().type != TokenType::kString) {
      return Status::ParseError("expected string literal but found '" + Peek().text +
                                "'");
    }
    std::string value = Peek().text;
    Advance();
    return value;
  }

  Result<int64_t> ExpectInteger() {
    if (Peek().type != TokenType::kInteger) {
      return Status::ParseError("expected integer but found '" + Peek().text + "'");
    }
    int64_t v = Peek().int_value;
    Advance();
    return v;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (near '" + Peek().text + "', offset " +
                              std::to_string(Peek().position) + ")");
  }

  // --- Expressions ----------------------------------------------------------
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLogical;
      node->logical_op = rel::LogicalOp::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLogical;
      node->logical_op = rel::LogicalOp::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kNot;
      node->left = std::move(inner);
      return node;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    rel::CompareOp op;
    if (ConsumeSymbol("=")) {
      op = rel::CompareOp::kEq;
    } else if (ConsumeSymbol("!=") || ConsumeSymbol("<>")) {
      op = rel::CompareOp::kNe;
    } else if (ConsumeSymbol("<=")) {
      op = rel::CompareOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      op = rel::CompareOp::kGe;
    } else if (ConsumeSymbol("<")) {
      op = rel::CompareOp::kLt;
    } else if (ConsumeSymbol(">")) {
      op = rel::CompareOp::kGt;
    } else {
      return left;
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
    auto node = std::make_unique<AstExpr>();
    node->kind = AstExpr::Kind::kCompare;
    node->compare_op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
  }

  Result<AstExprPtr> ParseAdditive() {
    INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    while (AtSymbol("+") || AtSymbol("-")) {
      rel::ArithmeticOp op =
          AtSymbol("+") ? rel::ArithmeticOp::kAdd : rel::ArithmeticOp::kSub;
      Advance();
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kArithmetic;
      node->arith_op = op;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseMultiplicative() {
    INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    while (AtSymbol("*") || AtSymbol("/")) {
      rel::ArithmeticOp op =
          AtSymbol("*") ? rel::ArithmeticOp::kMul : rel::ArithmeticOp::kDiv;
      Advance();
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kArithmetic;
      node->arith_op = op;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr inner, ParseUnary());
      // Lower unary minus to (0 - inner).
      auto zero = std::make_unique<AstExpr>();
      zero->kind = AstExpr::Kind::kLiteral;
      zero->value = rel::Value(static_cast<int64_t>(0));
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kArithmetic;
      node->arith_op = rel::ArithmeticOp::kSub;
      node->left = std::move(zero);
      node->right = std::move(inner);
      return node;
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParseAggregate() {
    exec::AggregateFunction fn;
    if (ConsumeKeyword("COUNT")) {
      fn = exec::AggregateFunction::kCount;
    } else if (ConsumeKeyword("SUM")) {
      fn = exec::AggregateFunction::kSum;
    } else if (ConsumeKeyword("MIN")) {
      fn = exec::AggregateFunction::kMin;
    } else if (ConsumeKeyword("MAX")) {
      fn = exec::AggregateFunction::kMax;
    } else if (ConsumeKeyword("AVG")) {
      fn = exec::AggregateFunction::kAvg;
    } else {
      return Error("expected aggregate function");
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
    auto node = std::make_unique<AstExpr>();
    node->kind = AstExpr::Kind::kAggregate;
    if (fn == exec::AggregateFunction::kCount && ConsumeSymbol("*")) {
      node->agg_fn = exec::AggregateFunction::kCountStar;
    } else {
      node->agg_fn = fn;
      INSIGHTNOTES_ASSIGN_OR_RETURN(node->left, ParseExpr());
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
    return node;
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& token = Peek();
    if (token.type == TokenType::kKeyword &&
        (token.text == "COUNT" || token.text == "SUM" || token.text == "MIN" ||
         token.text == "MAX" || token.text == "AVG")) {
      return ParseAggregate();
    }
    if (ConsumeKeyword("SUMMARY_COUNT")) {
      // SUMMARY_COUNT(instance [, 'label']) — a summary-based predicate
      // term (Section 2.1): resolved by the planner, not the binder.
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kSummaryCount;
      INSIGHTNOTES_ASSIGN_OR_RETURN(node->name, ExpectIdentifier());
      if (ConsumeSymbol(",")) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(std::string label, ExpectString());
        node->value = rel::Value(label);
      }
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
      return node;
    }
    if (ConsumeKeyword("NULL")) {
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLiteral;
      node->value = rel::Value::Null();
      return node;
    }
    if (token.type == TokenType::kInteger) {
      Advance();
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLiteral;
      node->value = rel::Value(token.int_value);
      return node;
    }
    if (token.type == TokenType::kFloat) {
      Advance();
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLiteral;
      node->value = rel::Value(token.float_value);
      return node;
    }
    if (token.type == TokenType::kString) {
      Advance();
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLiteral;
      node->value = rel::Value(token.text);
      return node;
    }
    if (token.type == TokenType::kIdentifier) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      if (ConsumeSymbol(".")) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
        name += "." + column;
      }
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kColumn;
      node->name = std::move(name);
      return node;
    }
    if (ConsumeSymbol("(")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return Error("expected expression");
  }

  // --- Statements -----------------------------------------------------------
  Result<Statement> ParseSelect() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    stmt.distinct = ConsumeKeyword("DISTINCT");
    // Select list.
    while (true) {
      SelectItem item;
      if (ConsumeSymbol("*")) {
        item.expr = nullptr;
      } else {
        INSIGHTNOTES_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          INSIGHTNOTES_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        }
      }
      stmt.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      TableRef ref;
      INSIGHTNOTES_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
      if (Peek().type == TokenType::kIdentifier) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
      } else {
        ref.alias = ref.table;
      }
      stmt.from.push_back(std::move(ref));
      if (!ConsumeSymbol(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(AstExprPtr expr, ParseExpr());
        stmt.group_by.push_back(std::move(expr));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("ORDER")) {
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        INSIGHTNOTES_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t n, ExpectInteger());
      if (n < 0) return Error("LIMIT must be non-negative");
      stmt.limit = static_cast<size_t>(n);
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseExplain() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
    ExplainStatement stmt;
    stmt.analyze = ConsumeKeyword("ANALYZE");
    if (AtKeyword("ZOOMIN")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(Statement inner, ParseZoomIn());
      stmt.is_zoom_in = true;
      stmt.zoom_in = std::move(std::get<ZoomInStatement>(inner));
      return Statement(std::move(stmt));
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(Statement inner, ParseSelect());
    stmt.select = std::move(std::get<SelectStatement>(inner));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseSet() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("SET"));
    SetStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
    ConsumeSymbol("=");  // Both "SET knob = n" and "SET knob n" parse.
    // Boolean knobs accept ON / OFF as sugar for 1 / 0 (SET OPTIMIZER = ON).
    // ON lexes as a keyword, OFF as an identifier.
    if (ConsumeKeyword("ON")) {
      stmt.value = 1;
      return Statement(std::move(stmt));
    }
    if (Peek().type == TokenType::kIdentifier && ToUpper(Peek().text) == "OFF") {
      Advance();
      stmt.value = 0;
      return Statement(std::move(stmt));
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.value, ExpectInteger());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseAnalyze() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
    AnalyzeStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateIndex() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("ON"));
    CreateIndexStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateTable() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      rel::ValueType type;
      if (ConsumeKeyword("BIGINT") || ConsumeKeyword("INT")) {
        type = rel::ValueType::kInt64;
      } else if (ConsumeKeyword("DOUBLE") || ConsumeKeyword("FLOAT")) {
        type = rel::ValueType::kFloat64;
      } else if (ConsumeKeyword("TEXT")) {
        type = rel::ValueType::kString;
      } else {
        return Error("expected column type (BIGINT, DOUBLE or TEXT)");
      }
      stmt.columns.emplace_back(std::move(column), type);
      if (!ConsumeSymbol(",")) break;
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<rel::Value> row;
      while (true) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (!ConsumeSymbol(",")) break;
      }
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return Statement(std::move(stmt));
  }

  Result<rel::Value> ParseLiteralValue() {
    bool negative = ConsumeSymbol("-");
    const Token& token = Peek();
    if (ConsumeKeyword("NULL")) {
      if (negative) return Error("cannot negate NULL");
      return rel::Value::Null();
    }
    if (token.type == TokenType::kInteger) {
      Advance();
      return rel::Value(negative ? -token.int_value : token.int_value);
    }
    if (token.type == TokenType::kFloat) {
      Advance();
      return rel::Value(negative ? -token.float_value : token.float_value);
    }
    if (token.type == TokenType::kString) {
      if (negative) return Error("cannot negate a string");
      Advance();
      return rel::Value(token.text);
    }
    return Error("expected literal value");
  }

  Result<Statement> ParseAnnotate() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("ANNOTATE"));
    AnnotateStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("ROW"));
    INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t row, ExpectInteger());
    stmt.row = static_cast<rel::RowId>(row);
    if (ConsumeKeyword("COLUMNS")) {
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
        stmt.columns.push_back(std::move(column));
        if (!ConsumeSymbol(",")) break;
      }
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("TEXT"));
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.body, ExpectString());
    if (ConsumeKeyword("AUTHOR")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.author, ExpectString());
    }
    if (ConsumeKeyword("AS")) {
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("DOCUMENT"));
      stmt.is_document = true;
      if (ConsumeKeyword("TITLE")) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.title, ExpectString());
      }
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseZoomIn() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("ZOOMIN"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("REFERENCE"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("QID"));
    ZoomInStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t qid, ExpectInteger());
    stmt.qid = static_cast<uint64_t>(qid);
    if (ConsumeKeyword("WHERE")) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("ON"));
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.instance, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t index, ExpectInteger());
    if (index < 1) return Error("INDEX is 1-based (Figure 3)");
    stmt.index = static_cast<size_t>(index - 1);
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateInstance() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("SUMMARY"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("INSTANCE"));
    CreateInstanceStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier());
    if (ConsumeKeyword("CLASSIFIER")) {
      stmt.type = CreateInstanceStatement::Type::kClassifier;
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("LABELS"));
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(std::string label, ExpectString());
        stmt.labels.push_back(std::move(label));
        if (!ConsumeSymbol(",")) break;
      }
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (ConsumeKeyword("CLUSTER")) {
      stmt.type = CreateInstanceStatement::Type::kCluster;
      if (ConsumeKeyword("THRESHOLD")) {
        const Token& token = Peek();
        if (token.type == TokenType::kFloat) {
          stmt.threshold = token.float_value;
          Advance();
        } else if (token.type == TokenType::kInteger) {
          stmt.threshold = static_cast<double>(token.int_value);
          Advance();
        } else {
          return Error("expected numeric THRESHOLD");
        }
      }
    } else if (ConsumeKeyword("SNIPPET")) {
      stmt.type = CreateInstanceStatement::Type::kSnippet;
    } else {
      return Error("expected CLASSIFIER, CLUSTER or SNIPPET");
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseTrain() {
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("TRAIN"));
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("SUMMARY"));
    TrainInstanceStatement stmt;
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.instance, ExpectIdentifier());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("LABEL"));
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.label, ExpectString());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("WITH"));
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.text, ExpectString());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseLink() {
    LinkStatement stmt;
    if (ConsumeKeyword("LINK")) {
      stmt.link = true;
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("SUMMARY"));
      INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.instance, ExpectIdentifier());
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("TO"));
    } else {
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("UNLINK"));
      stmt.link = false;
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("SUMMARY"));
      INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.instance, ExpectIdentifier());
      INSIGHTNOTES_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    return Statement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  INSIGHTNOTES_ASSIGN_OR_RETURN(Statement statement, parser.ParseStatement());
  INSIGHTNOTES_RETURN_IF_ERROR(parser.Finish());
  return statement;
}

}  // namespace insightnotes::sql
