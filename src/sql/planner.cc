#include "sql/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/index_scan.h"
#include "exec/nested_loop_join.h"
#include "exec/parallel.h"
#include "exec/projection.h"
#include "exec/restore_order.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "exec/summary_filter.h"
#include "sql/binder.h"
#include "sql/optimizer.h"

namespace insightnotes::sql {

namespace {

/// Canonical rendering used to match select items against GROUP BY items.
std::string AstToString(const AstExpr& e) {
  switch (e.kind) {
    case AstExpr::Kind::kColumn:
      return e.name;
    case AstExpr::Kind::kLiteral:
      return e.value.ToString();
    case AstExpr::Kind::kCompare:
      return "(" + AstToString(*e.left) + " " +
             std::string(rel::CompareOpToString(e.compare_op)) + " " +
             AstToString(*e.right) + ")";
    case AstExpr::Kind::kLogical:
      return "(" + AstToString(*e.left) +
             (e.logical_op == rel::LogicalOp::kAnd ? " AND " : " OR ") +
             AstToString(*e.right) + ")";
    case AstExpr::Kind::kNot:
      return "(NOT " + AstToString(*e.left) + ")";
    case AstExpr::Kind::kArithmetic: {
      const char* ops[] = {"+", "-", "*", "/"};
      return "(" + AstToString(*e.left) + " " + ops[static_cast<int>(e.arith_op)] +
             " " + AstToString(*e.right) + ")";
    }
    case AstExpr::Kind::kAggregate:
      return std::string(exec::AggregateFunctionToString(e.agg_fn)) + "(" +
             (e.left != nullptr ? AstToString(*e.left) : "*") + ")";
    case AstExpr::Kind::kSummaryCount:
      return "SUMMARY_COUNT(" + e.name +
             (e.value.is_null() ? "" : ", '" + e.value.ToString() + "'") + ")";
  }
  return "?";
}

/// Splits an AND-tree into conjuncts (pointers into the AST).
void SplitConjuncts(const AstExpr* expr, std::vector<const AstExpr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == AstExpr::Kind::kLogical &&
      expr->logical_op == rel::LogicalOp::kAnd) {
    SplitConjuncts(expr->left.get(), out);
    SplitConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

/// Returns true (and the table index) when every column referenced by
/// `expr` resolves into table `k`'s schema slice of the full schema.
struct ColumnOwnership {
  // For each referenced column name: which FROM table owns it.
  std::vector<std::pair<std::string, size_t>> columns;
  bool resolvable = true;
};

class SelectPlanner {
 public:
  SelectPlanner(const SelectStatement& stmt, core::Engine* engine,
                const PlannerOptions& options)
      : stmt_(stmt), engine_(engine), options_(options) {}

  Result<std::unique_ptr<exec::Operator>> Plan() {
    INSIGHTNOTES_RETURN_IF_ERROR(ResolveTables());
    INSIGHTNOTES_RETURN_IF_ERROR(ExpandStar());
    INSIGHTNOTES_RETURN_IF_ERROR(CollectReferencedColumns());
    join_order_.resize(tables_.size());
    std::iota(join_order_.begin(), join_order_.end(), 0);
    if (options_.optimize) {
      INSIGHTNOTES_RETURN_IF_ERROR(RunOptimizer());
      join_order_ = choice_.join_order;
      stamp_ranks_ = choice_.reordered;
      if (choice_.serial) options_.parallelism = 1;
    }
    // A driver smaller than one morsel plans serial even with the optimizer
    // off: a single-morsel parallel section is pure dispatch overhead, and
    // serial output is byte-identical anyway.
    if (tables_[join_order_[0]].table->NumRows() < options_.morsel_size) {
      options_.parallelism = 1;
    }
    std::unique_ptr<exec::Operator> tree;
    if (options_.parallelism > 1) {
      // Residual and summary filters run inside the workers when the
      // parallel section is eligible; otherwise fall through to serial.
      INSIGHTNOTES_ASSIGN_OR_RETURN(tree, BuildParallelSection());
    }
    if (tree == nullptr) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(tree, BuildJoinTree());
      INSIGHTNOTES_ASSIGN_OR_RETURN(tree, ApplyResidualFilters(std::move(tree)));
      if (stamp_ranks_) tree = RestoreCanonicalOrder(std::move(tree));
    }
    // Stages already handled inside the parallel section (partial operators
    // below the gather + a merge above it) are skipped here.
    if (!parallel_aggregated_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(tree, ApplyAggregation(std::move(tree)));
    }
    if (!parallel_sorted_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(tree, ApplyOrderBy(std::move(tree)));
    }
    if (!parallel_projected_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(tree, ApplyFinalProjection(std::move(tree)));
    }
    if (stmt_.distinct && !parallel_distinct_) {
      tree = std::make_unique<exec::DistinctOperator>(std::move(tree));
    }
    if (stmt_.limit.has_value()) {
      tree = std::make_unique<exec::LimitOperator>(std::move(tree), *stmt_.limit);
    }
    return tree;
  }

 private:
  struct TableSlot {
    const rel::Table* table = nullptr;
    std::string alias;
    rel::Schema schema;                 // Aliased base schema.
    std::set<std::string> needed;       // Qualified column names to keep.
    std::vector<const AstExpr*> filters;  // Single-table conjuncts.
  };

  Status ResolveTables() {
    for (const TableRef& ref : stmt_.from) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table,
                                    engine_->catalog()->GetTable(ref.table));
      TableSlot slot;
      slot.table = table;
      slot.alias = ref.alias;
      slot.schema = table->schema().WithQualifier(ref.alias);
      tables_.push_back(std::move(slot));
      full_schema_ = rel::Schema::Concat(full_schema_, tables_.back().schema);
    }
    if (tables_.empty()) return Status::InvalidArgument("query has no FROM tables");
    return Status::OK();
  }

  /// Replaces '*' items with one column item per full-schema column.
  Status ExpandStar() {
    for (const SelectItem& item : stmt_.items) {
      if (item.expr == nullptr) {
        for (const rel::Column& c : full_schema_.columns()) {
          auto col = std::make_unique<AstExpr>();
          col->kind = AstExpr::Kind::kColumn;
          col->name = c.QualifiedName();
          expanded_items_.push_back(SelectItem{std::move(col), ""});
        }
      } else {
        SelectItem copy;
        copy.alias = item.alias;
        copy.expr = CloneAst(*item.expr);
        expanded_items_.push_back(std::move(copy));
      }
    }
    return Status::OK();
  }

  static AstExprPtr CloneAst(const AstExpr& e) {
    auto out = std::make_unique<AstExpr>();
    out->kind = e.kind;
    out->name = e.name;
    out->value = e.value;
    out->compare_op = e.compare_op;
    out->logical_op = e.logical_op;
    out->arith_op = e.arith_op;
    out->agg_fn = e.agg_fn;
    if (e.left != nullptr) out->left = CloneAst(*e.left);
    if (e.right != nullptr) out->right = CloneAst(*e.right);
    return out;
  }

  /// Resolves a column name to its owning table index.
  Result<size_t> OwnerOf(const std::string& name) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(size_t global, full_schema_.IndexOf(name));
    size_t offset = 0;
    for (size_t k = 0; k < tables_.size(); ++k) {
      size_t width = tables_[k].schema.NumColumns();
      if (global < offset + width) return k;
      offset += width;
    }
    return Status::Internal("column resolution out of bounds");
  }

  /// Marks every column referenced anywhere in the query as needed by its
  /// owning table (drives the Theorem 1&2 projection push-down).
  Status CollectReferencedColumns() {
    std::vector<std::string> names;
    for (const SelectItem& item : expanded_items_) item.expr->CollectColumns(&names);
    if (stmt_.where != nullptr) stmt_.where->CollectColumns(&names);
    for (const auto& g : stmt_.group_by) g->CollectColumns(&names);
    // ORDER BY may reference output aliases (e.g. an aggregate's name)
    // rather than base columns: resolve those best-effort only.
    std::vector<std::string> optional_names;
    for (const auto& o : stmt_.order_by) o.expr->CollectColumns(&optional_names);

    auto mark_needed = [&](const std::string& name) -> Status {
      INSIGHTNOTES_ASSIGN_OR_RETURN(size_t owner, OwnerOf(name));
      INSIGHTNOTES_ASSIGN_OR_RETURN(size_t global, full_schema_.IndexOf(name));
      size_t offset = 0;
      for (size_t k = 0; k < owner; ++k) offset += tables_[k].schema.NumColumns();
      tables_[owner].needed.insert(
          tables_[owner].schema.ColumnAt(global - offset).QualifiedName());
      return Status::OK();
    };
    for (const std::string& name : names) {
      INSIGHTNOTES_RETURN_IF_ERROR(mark_needed(name));
    }
    for (const std::string& name : optional_names) {
      Status s = mark_needed(name);
      if (!s.ok() && !s.IsNotFound()) return s;
    }

    // Classify WHERE conjuncts: summary predicates, single-table,
    // equi-join, or residual.
    std::vector<const AstExpr*> conjuncts;
    SplitConjuncts(stmt_.where.get(), &conjuncts);
    for (const AstExpr* conjunct : conjuncts) {
      // SUMMARY_COUNT(inst[, 'label']) <op> <integer literal> — a
      // summary-based predicate, applied above the join tree.
      if (conjunct->kind == AstExpr::Kind::kCompare) {
        const AstExpr* sc = nullptr;
        const AstExpr* lit = nullptr;
        rel::CompareOp op = conjunct->compare_op;
        if (conjunct->left->kind == AstExpr::Kind::kSummaryCount) {
          sc = conjunct->left.get();
          lit = conjunct->right.get();
        } else if (conjunct->right->kind == AstExpr::Kind::kSummaryCount) {
          sc = conjunct->right.get();
          lit = conjunct->left.get();
          // Flip the comparison: <lit> op SUMMARY_COUNT == SUMMARY_COUNT op' <lit>.
          switch (op) {
            case rel::CompareOp::kLt: op = rel::CompareOp::kGt; break;
            case rel::CompareOp::kLe: op = rel::CompareOp::kGe; break;
            case rel::CompareOp::kGt: op = rel::CompareOp::kLt; break;
            case rel::CompareOp::kGe: op = rel::CompareOp::kLe; break;
            default: break;
          }
        }
        if (sc != nullptr) {
          if (lit->kind != AstExpr::Kind::kLiteral ||
              lit->value.type() != rel::ValueType::kInt64) {
            return Status::InvalidArgument(
                "SUMMARY_COUNT must be compared with an integer literal");
          }
          exec::SummaryCountSpec spec;
          spec.instance = sc->name;
          if (!sc->value.is_null()) spec.label = sc->value.AsString();
          summary_filters_.push_back(
              SummaryFilter{std::move(spec), op, lit->value.AsInt64()});
          continue;
        }
      }
      std::vector<std::string> cols;
      conjunct->CollectColumns(&cols);
      std::set<size_t> owners;
      bool resolvable = true;
      for (const std::string& c : cols) {
        auto owner = OwnerOf(c);
        if (!owner.ok()) {
          resolvable = false;
          break;
        }
        owners.insert(*owner);
      }
      if (!resolvable) {
        return Status::NotFound("unresolvable column in WHERE clause");
      }
      if (owners.size() <= 1) {
        size_t owner = owners.empty() ? 0 : *owners.begin();
        tables_[owner].filters.push_back(conjunct);
      } else if (owners.size() == 2 && conjunct->kind == AstExpr::Kind::kCompare &&
                 conjunct->compare_op == rel::CompareOp::kEq) {
        join_conjuncts_.push_back(conjunct);
      } else {
        residual_conjuncts_.push_back(conjunct);
      }
    }
    return Status::OK();
  }

  static size_t EstimateToRows(double estimate) {
    if (!(estimate > 0.0)) return 0;
    return static_cast<size_t>(std::llround(estimate));
  }

  /// True when reordering the table could reorder summary-object or
  /// attachment merges: it has linked summary instances or stored
  /// annotations. Such tables keep their FROM-relative order.
  bool TableIsAnnotated(const rel::Table* table) const {
    if (!engine_->summaries()->LinkedTo(table->id()).empty()) return true;
    bool any = false;
    engine_->annotations()->ScanTable(
        table->id(), [&](rel::RowId, const ann::Attachment&) {
          any = true;
          return false;
        });
    return any;
  }

  /// Runs the cost-based search (sql/optimizer.h) over the resolved tables
  /// and classified conjuncts; fills choice_.
  Status RunOptimizer() {
    std::vector<OptimizerTable> opt_tables;
    opt_tables.reserve(tables_.size());
    for (TableSlot& slot : tables_) {
      OptimizerTable t;
      t.table = slot.table;
      t.schema = slot.schema;
      t.stats = slot.table->stats();
      t.filters = slot.filters;
      t.annotated = TableIsAnnotated(slot.table);
      opt_tables.push_back(std::move(t));
    }
    std::vector<OptimizerJoin> opt_joins;
    for (const AstExpr* conjunct : join_conjuncts_) {
      // Only plain column = column conjuncts enter the cost graph; anything
      // fancier keeps the identity order (conservative, never incorrect).
      std::vector<std::string> left_cols, right_cols;
      conjunct->left->CollectColumns(&left_cols);
      conjunct->right->CollectColumns(&right_cols);
      if (left_cols.size() != 1 || right_cols.size() != 1) continue;
      auto left_owner = OwnerOf(left_cols[0]);
      auto right_owner = OwnerOf(right_cols[0]);
      if (!left_owner.ok() || !right_owner.ok()) continue;
      OptimizerJoin join;
      join.left_table = *left_owner;
      join.left_column = left_cols[0];
      join.right_table = *right_owner;
      join.right_column = right_cols[0];
      opt_joins.push_back(std::move(join));
    }
    choice_ = ChoosePlan(opt_tables, opt_joins, options_.morsel_size);
    optimized_ = true;
    return Status::OK();
  }

  /// Sorts a reordered plan's output back into canonical FROM order by the
  /// per-table ranks the leaf scans stamped (see exec/restore_order.h).
  std::unique_ptr<exec::Operator> RestoreCanonicalOrder(
      std::unique_ptr<exec::Operator> tree) {
    std::vector<size_t> key_order(join_order_.size());
    for (size_t k = 0; k < join_order_.size(); ++k) key_order[join_order_[k]] = k;
    auto restore = std::make_unique<exec::RestoreOrderOperator>(
        std::move(tree), std::move(key_order));
    if (optimized_) {
      restore->SetPlannerEstimate(EstimateToRows(choice_.est_result_rows));
    }
    return restore;
  }

  /// Table `k`'s per-tuple stages — filters + Theorem-1 projection — on top
  /// of `tree` (a scan of the table, serial or morsel-parallel).
  Result<std::unique_ptr<exec::Operator>> ApplyTableStages(
      size_t k, std::unique_ptr<exec::Operator> tree) {
    TableSlot& slot = tables_[k];
    for (const AstExpr* filter : slot.filters) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr bound,
                                    Bind(*filter, tree->OutputSchema()));
      tree = std::make_unique<exec::FilterOperator>(std::move(tree), std::move(bound));
      if (optimized_) {
        tree->SetPlannerEstimate(EstimateToRows(choice_.access[k].est_rows));
      }
    }
    if (options_.project_before_merge &&
        slot.needed.size() < slot.schema.NumColumns()) {
      std::vector<std::string> kept(slot.needed.begin(), slot.needed.end());
      // Preserve base-table column order for readability.
      std::sort(kept.begin(), kept.end(), [&](const auto& a, const auto& b) {
        return *slot.schema.IndexOf(a) < *slot.schema.IndexOf(b);
      });
      INSIGHTNOTES_ASSIGN_OR_RETURN(
          auto project, exec::ProjectOperator::FromColumns(std::move(tree), kept));
      tree = std::move(project);
      if (optimized_) {
        tree->SetPlannerEstimate(EstimateToRows(choice_.access[k].est_rows));
      }
    }
    return tree;
  }

  /// Scan [+ filter] [+ Theorem-1 projection] for one table. With the
  /// optimizer on, a slot whose access path chose an index probe scans
  /// through the index instead of sequentially — the original predicates
  /// all stay as residual filters above, so results are identical.
  Result<std::unique_ptr<exec::Operator>> BuildTableInput(size_t k) {
    TableSlot& slot = tables_[k];
    std::unique_ptr<exec::Operator> tree;
    if (optimized_ && choice_.access[k].use_index) {
      auto scan = std::make_unique<exec::IndexScanOperator>(
          slot.table, slot.alias, engine_->summaries(), engine_->annotations(),
          choice_.access[k].probe);
      if (stamp_ranks_) scan->EnableRankStamping();
      scan->SetPlannerEstimate(EstimateToRows(choice_.access[k].scan_rows));
      tree = std::move(scan);
    } else {
      auto scan = std::make_unique<exec::SeqScanOperator>(
          slot.table, slot.alias, engine_->summaries(), engine_->annotations());
      if (stamp_ranks_) scan->EnableRankStamping();
      if (optimized_) {
        scan->SetPlannerEstimate(EstimateToRows(choice_.access[k].scan_rows));
      }
      tree = std::move(scan);
    }
    return ApplyTableStages(k, std::move(tree));
  }

  /// Morsel-parallel form of BuildJoinTree + ApplyResidualFilters: P worker
  /// pipelines sharing a morsel source over the driving table (and one
  /// partitioned build state per equi-join), re-serialized by a Gather in
  /// morsel order. Returns null — without touching planner state — when the
  /// plan needs a stage with no parallel form (a cross product), so the
  /// caller falls back to the serial tree.
  Result<std::unique_ptr<exec::Operator>> BuildParallelSection() {
    const size_t num_workers = options_.parallelism;
    ThreadPool* pool = engine_->ExecPool(num_workers);
    const size_t driver_slot = join_order_[0];
    TableSlot& driver = tables_[driver_slot];
    auto source = std::make_shared<exec::ScanMorselSource>(
        driver.table, driver.alias, engine_->summaries(), engine_->annotations(),
        /*with_summaries=*/true, options_.morsel_size);
    if (optimized_ && choice_.access[driver_slot].use_index) {
      source->SetIndexProbe(choice_.access[driver_slot].probe);
    }
    if (stamp_ranks_) source->EnableRankStamping();
    std::vector<std::shared_ptr<exec::SharedPlanState>> states;
    states.push_back(source);

    std::vector<std::unique_ptr<exec::Operator>> pipes;
    pipes.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      std::unique_ptr<exec::Operator> pipe =
          std::make_unique<exec::MorselScanOperator>(source);
      if (optimized_) {
        pipe->SetPlannerEstimate(
            EstimateToRows(choice_.access[driver_slot].scan_rows));
      }
      INSIGHTNOTES_ASSIGN_OR_RETURN(pipe,
                                    ApplyTableStages(driver_slot, std::move(pipe)));
      pipes.push_back(std::move(pipe));
    }

    // Joins: same conjunct selection as the serial BuildJoinTree (all pipes
    // share one output schema, so pipes[0] stands in for the serial tree),
    // but the build side is materialized once into a shared partitioned
    // state probed by every worker.
    std::vector<bool> used(join_conjuncts_.size(), false);
    for (size_t i = 1; i < join_order_.size(); ++i) {
      const size_t k = join_order_[i];
      INSIGHTNOTES_ASSIGN_OR_RETURN(std::unique_ptr<exec::Operator> right,
                                    BuildTableInput(k));
      ssize_t chosen = -1;
      bool left_is_tree = true;
      for (size_t j = 0; j < join_conjuncts_.size(); ++j) {
        if (used[j]) continue;
        const AstExpr* c = join_conjuncts_[j];
        if (BindableAgainst(*c->left, pipes[0]->OutputSchema()) &&
            BindableAgainst(*c->right, right->OutputSchema())) {
          chosen = static_cast<ssize_t>(j);
          left_is_tree = true;
          break;
        }
        if (BindableAgainst(*c->left, right->OutputSchema()) &&
            BindableAgainst(*c->right, pipes[0]->OutputSchema())) {
          chosen = static_cast<ssize_t>(j);
          left_is_tree = false;
          break;
        }
      }
      if (chosen < 0) return std::unique_ptr<exec::Operator>();
      used[static_cast<size_t>(chosen)] = true;
      const AstExpr* c = join_conjuncts_[static_cast<size_t>(chosen)];
      const AstExpr* probe_side = left_is_tree ? c->left.get() : c->right.get();
      const AstExpr* build_side = left_is_tree ? c->right.get() : c->left.get();
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr build_key,
                                    Bind(*build_side, right->OutputSchema()));
      auto state = std::make_shared<exec::HashJoinBuildState>(
          std::move(right), std::move(build_key), num_workers, pool);
      states.push_back(state);
      for (size_t w = 0; w < num_workers; ++w) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr probe_key,
                                      Bind(*probe_side, pipes[w]->OutputSchema()));
        pipes[w] = std::make_unique<exec::HashJoinProbeOperator>(
            std::move(pipes[w]), state, std::move(probe_key),
            /*expose_build=*/w == 0);
        if (optimized_ && i < choice_.rows_after_step.size()) {
          pipes[w]->SetPlannerEstimate(
              EstimateToRows(choice_.rows_after_step[i]));
        }
      }
    }

    // Residual conjuncts (incl. leftover join conjuncts) and summary
    // filters are per-tuple stages: they run inside every worker instead
    // of above the gather.
    std::vector<const AstExpr*> residuals = residual_conjuncts_;
    for (size_t j = 0; j < join_conjuncts_.size(); ++j) {
      if (!used[j]) residuals.push_back(join_conjuncts_[j]);
    }
    for (size_t w = 0; w < num_workers; ++w) {
      for (const AstExpr* conjunct : residuals) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr bound,
                                      Bind(*conjunct, pipes[w]->OutputSchema()));
        pipes[w] =
            std::make_unique<exec::FilterOperator>(std::move(pipes[w]), std::move(bound));
      }
      for (const SummaryFilter& filter : summary_filters_) {
        pipes[w] = std::make_unique<exec::SummaryFilterOperator>(
            std::move(pipes[w]), filter.spec, filter.op, filter.threshold);
      }
      // Fault-injection seam: wrap the finished per-tuple pipeline before
      // any blocking partial operator, so scripted faults hit the worker
      // at morsel granularity.
      if (options_.wrap_worker_pipeline) {
        pipes[w] = options_.wrap_worker_pipeline(std::move(pipes[w]), w);
      }
    }

    // A reordered plan emits in join-order, not canonical FROM order; the
    // RestoreOrder sort above the gather re-serializes before any
    // order-sensitive stage, so partial pushdowns and the LIMIT row quota
    // (both of which assume morsel order == canonical order) are skipped.
    if (stamp_ranks_) {
      std::unique_ptr<exec::Operator> gather =
          std::make_unique<exec::GatherOperator>(std::move(pipes),
                                                 std::move(states), pool);
      if (optimized_) {
        gather->SetPlannerEstimate(EstimateToRows(choice_.est_result_rows));
      }
      return RestoreCanonicalOrder(std::move(gather));
    }

    // Blocking stages: instead of ending the parallel section at the gather
    // and aggregating/sorting/deduplicating serially above it, push a
    // partial operator into every worker pipeline and merge the partial
    // states deterministically above the gather. Aggregation subsumes the
    // other stages' cost (its output is tiny), so it wins the dispatch;
    // otherwise a sort dominates a residual distinct.
    if (HasAggregation()) {
      return BuildParallelAggregation(std::move(pipes), std::move(states), pool);
    }
    if (!stmt_.order_by.empty()) {
      return BuildParallelSort(std::move(pipes), std::move(states), pool);
    }
    if (stmt_.distinct) {
      return BuildParallelDistinct(std::move(pipes), std::move(states), pool);
    }
    if (stmt_.limit.has_value()) {
      // Plain LIMIT k: serial semantics take the first k surviving rows in
      // morsel order, so a cooperative row quota lets the morsel source
      // stop dispatching once the first morsels' completed batches already
      // carry k rows. The LimitOperator above trims in-flight extras.
      auto quota = std::make_shared<exec::RowQuota>(*stmt_.limit);
      source->SetQuota(quota);
      states.push_back(quota);
      auto gather = std::make_unique<exec::GatherOperator>(std::move(pipes),
                                                           std::move(states), pool);
      gather->EnableRowQuota(std::move(quota), source);
      return std::unique_ptr<exec::Operator>(std::move(gather));
    }
    return std::unique_ptr<exec::Operator>(std::make_unique<exec::GatherOperator>(
        std::move(pipes), std::move(states), pool));
  }

  /// Parallel aggregation: PartialAggregateOperator per worker feeding a
  /// shared PartialAggState, folded above the gather by
  /// AggregateMergeOperator in ascending morsel order.
  Result<std::unique_ptr<exec::Operator>> BuildParallelAggregation(
      std::vector<std::unique_ptr<exec::Operator>> pipes,
      std::vector<std::shared_ptr<exec::SharedPlanState>> states, ThreadPool* pool) {
    auto sink = std::make_shared<exec::PartialAggState>();
    states.push_back(sink);
    for (std::unique_ptr<exec::Operator>& pipe : pipes) {
      std::vector<rel::ExprPtr> group_exprs;
      std::vector<rel::Column> group_columns;
      std::vector<exec::AggregateItem> aggregates;
      INSIGHTNOTES_RETURN_IF_ERROR(BindAggregation(
          pipe->OutputSchema(), &group_exprs, &group_columns, &aggregates));
      pipe = std::make_unique<exec::PartialAggregateOperator>(
          std::move(pipe), std::move(group_exprs), std::move(aggregates), sink);
    }
    auto gather = std::make_unique<exec::GatherOperator>(std::move(pipes),
                                                         std::move(states), pool);
    std::vector<rel::ExprPtr> group_exprs;
    std::vector<rel::Column> group_columns;
    std::vector<exec::AggregateItem> aggregates;
    INSIGHTNOTES_RETURN_IF_ERROR(BindAggregation(
        gather->OutputSchema(), &group_exprs, &group_columns, &aggregates));
    parallel_aggregated_ = true;
    return std::unique_ptr<exec::Operator>(
        std::make_unique<exec::AggregateMergeOperator>(
            std::move(gather), std::move(group_exprs), std::move(group_columns),
            std::move(aggregates), std::move(sink)));
  }

  /// Parallel sort: PartialSortOperator per worker publishes a locally
  /// sorted run tagged with serial ranks; SortMergeOperator k-way-merges
  /// the runs above the gather. With `ORDER BY ... LIMIT k` (and no
  /// DISTINCT, which would dedup *between* sort and limit) the limit is
  /// pushed down: workers keep bounded top-k runs pruned against a shared
  /// k-th-candidate bound, and the merge stops after k rows.
  Result<std::unique_ptr<exec::Operator>> BuildParallelSort(
      std::vector<std::unique_ptr<exec::Operator>> pipes,
      std::vector<std::shared_ptr<exec::SharedPlanState>> states, ThreadPool* pool) {
    auto sink = std::make_shared<exec::PartialSortState>();
    states.push_back(sink);
    std::vector<bool> ascending;
    std::string label;
    for (const OrderItem& item : stmt_.order_by) {
      ascending.push_back(item.ascending);
      if (!label.empty()) label += ", ";
      label += AstToString(*item.expr);
      if (!item.ascending) label += " DESC";
    }
    const bool push_limit = stmt_.limit.has_value() && !stmt_.distinct;
    std::shared_ptr<exec::TopKBound> bound;
    if (push_limit) {
      bound = std::make_shared<exec::TopKBound>(*stmt_.limit, ascending);
      states.push_back(bound);
    }
    for (std::unique_ptr<exec::Operator>& pipe : pipes) {
      std::vector<exec::ParallelSortKey> keys;
      for (const OrderItem& item : stmt_.order_by) {
        exec::ParallelSortKey key;
        key.ascending = item.ascending;
        if (item.expr->kind == AstExpr::Kind::kSummaryCount) {
          auto spec = std::make_unique<exec::SummaryCountSpec>();
          spec->instance = item.expr->name;
          if (!item.expr->value.is_null()) spec->label = item.expr->value.AsString();
          key.spec = std::move(spec);
        } else {
          INSIGHTNOTES_ASSIGN_OR_RETURN(key.expr,
                                        Bind(*item.expr, pipe->OutputSchema()));
        }
        keys.push_back(std::move(key));
      }
      pipe = std::make_unique<exec::PartialSortOperator>(
          std::move(pipe), std::move(keys), sink, bound);
    }
    auto gather = std::make_unique<exec::GatherOperator>(std::move(pipes),
                                                         std::move(states), pool);
    parallel_sorted_ = true;
    return std::unique_ptr<exec::Operator>(std::make_unique<exec::SortMergeOperator>(
        std::move(gather), std::move(ascending), std::move(label), std::move(sink),
        push_limit ? *stmt_.limit : SIZE_MAX));
  }

  /// Parallel distinct: the final projection moves below the partial
  /// operators (distinct keys are the projected columns), then each worker
  /// collapses its morsels locally and DistinctMergeOperator folds the
  /// per-morsel sets above the gather in ascending morsel order.
  Result<std::unique_ptr<exec::Operator>> BuildParallelDistinct(
      std::vector<std::unique_ptr<exec::Operator>> pipes,
      std::vector<std::shared_ptr<exec::SharedPlanState>> states, ThreadPool* pool) {
    auto sink = std::make_shared<exec::PartialDistinctState>();
    states.push_back(sink);
    bool trim = !options_.project_before_merge;
    for (std::unique_ptr<exec::Operator>& pipe : pipes) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(std::vector<exec::ProjectionItem> items,
                                    BuildFinalProjectionItems(pipe->OutputSchema()));
      pipe = std::make_unique<exec::ProjectOperator>(std::move(pipe),
                                                     std::move(items), trim);
      pipe = std::make_unique<exec::PartialDistinctOperator>(std::move(pipe), sink);
    }
    auto gather = std::make_unique<exec::GatherOperator>(std::move(pipes),
                                                         std::move(states), pool);
    parallel_projected_ = true;
    parallel_distinct_ = true;
    return std::unique_ptr<exec::Operator>(
        std::make_unique<exec::DistinctMergeOperator>(std::move(gather),
                                                      std::move(sink)));
  }

  Result<std::unique_ptr<exec::Operator>> BuildJoinTree() {
    INSIGHTNOTES_ASSIGN_OR_RETURN(std::unique_ptr<exec::Operator> tree,
                                  BuildTableInput(join_order_[0]));
    std::vector<bool> used(join_conjuncts_.size(), false);
    for (size_t i = 1; i < join_order_.size(); ++i) {
      const size_t k = join_order_[i];
      INSIGHTNOTES_ASSIGN_OR_RETURN(std::unique_ptr<exec::Operator> right,
                                    BuildTableInput(k));
      // Find an unused equi conjunct with one side in `tree` and one in
      // `right`.
      ssize_t chosen = -1;
      bool left_is_tree = true;
      for (size_t j = 0; j < join_conjuncts_.size(); ++j) {
        if (used[j]) continue;
        const AstExpr* c = join_conjuncts_[j];
        bool l_tree = BindableAgainst(*c->left, tree->OutputSchema());
        bool r_right = BindableAgainst(*c->right, right->OutputSchema());
        bool l_right = BindableAgainst(*c->left, right->OutputSchema());
        bool r_tree = BindableAgainst(*c->right, tree->OutputSchema());
        if (l_tree && r_right) {
          chosen = static_cast<ssize_t>(j);
          left_is_tree = true;
          break;
        }
        if (l_right && r_tree) {
          chosen = static_cast<ssize_t>(j);
          left_is_tree = false;
          break;
        }
      }
      if (chosen >= 0) {
        used[static_cast<size_t>(chosen)] = true;
        const AstExpr* c = join_conjuncts_[static_cast<size_t>(chosen)];
        const AstExpr* tree_side = left_is_tree ? c->left.get() : c->right.get();
        const AstExpr* right_side = left_is_tree ? c->right.get() : c->left.get();
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr left_key,
                                      Bind(*tree_side, tree->OutputSchema()));
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr right_key,
                                      Bind(*right_side, right->OutputSchema()));
        tree = std::make_unique<exec::HashJoinOperator>(
            std::move(tree), std::move(right), std::move(left_key),
            std::move(right_key));
      } else {
        // Cross product via nested loop with a constant-true predicate; any
        // remaining join conjuncts apply as residual filters.
        tree = std::make_unique<exec::NestedLoopJoinOperator>(
            std::move(tree), std::move(right),
            rel::MakeLiteral(rel::Value(static_cast<int64_t>(1))));
      }
      if (optimized_ && i < choice_.rows_after_step.size()) {
        tree->SetPlannerEstimate(EstimateToRows(choice_.rows_after_step[i]));
      }
    }
    // Unused join conjuncts (e.g. a second equality between the same pair
    // of tables) become residual filters.
    for (size_t j = 0; j < join_conjuncts_.size(); ++j) {
      if (!used[j]) residual_conjuncts_.push_back(join_conjuncts_[j]);
    }
    return tree;
  }

  static bool BindableAgainst(const AstExpr& expr, const rel::Schema& schema) {
    std::vector<std::string> cols;
    expr.CollectColumns(&cols);
    for (const std::string& c : cols) {
      if (!schema.Contains(c)) return false;
    }
    return !cols.empty();
  }

  Result<std::unique_ptr<exec::Operator>> ApplyResidualFilters(
      std::unique_ptr<exec::Operator> tree) {
    // Estimates shrink as each residual stage applies: default selectivities
    // for ordinary conjuncts, the ANALYZE annotation-count distribution of
    // the driving table for SUMMARY_COUNT predicates.
    double est = optimized_ ? choice_.est_result_rows : 0.0;
    for (const AstExpr* conjunct : residual_conjuncts_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr bound,
                                    Bind(*conjunct, tree->OutputSchema()));
      tree = std::make_unique<exec::FilterOperator>(std::move(tree), std::move(bound));
      if (optimized_) {
        est *= EstimateSelectivity(*conjunct, full_schema_, nullptr);
        tree->SetPlannerEstimate(EstimateToRows(est));
      }
    }
    for (SummaryFilter& filter : summary_filters_) {
      tree = std::make_unique<exec::SummaryFilterOperator>(
          std::move(tree), filter.spec, filter.op, filter.threshold);
      if (optimized_) {
        std::shared_ptr<const rel::TableStats> driver_stats =
            tables_[join_order_[0]].table->stats();
        est *= driver_stats != nullptr
                   ? driver_stats->AnnCountSelectivity(filter.op, filter.threshold)
                   : 0.5;
        tree->SetPlannerEstimate(EstimateToRows(est));
      }
    }
    return tree;
  }

  bool HasAggregation() const {
    if (!stmt_.group_by.empty()) return true;
    for (const SelectItem& item : expanded_items_) {
      if (item.expr->ContainsAggregate()) return true;
    }
    return false;
  }

  /// Binds GROUP BY expressions and aggregate select items against `in`
  /// (the pre-aggregation schema). Idempotent: the parallel shape calls it
  /// once per worker pipeline and once more for the merge operator.
  Status BindAggregation(const rel::Schema& in,
                         std::vector<rel::ExprPtr>* group_exprs,
                         std::vector<rel::Column>* group_columns,
                         std::vector<exec::AggregateItem>* aggregates) {
    std::vector<std::string> group_keys;  // Canonical AST strings.
    for (const auto& g : stmt_.group_by) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr bound, Bind(*g, in));
      group_keys.push_back(AstToString(*g));
      rel::Column column{AstToString(*g), rel::ValueType::kNull, ""};
      if (g->kind == AstExpr::Kind::kColumn) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, in.IndexOf(g->name));
        column = in.ColumnAt(index);
      }
      group_columns->push_back(std::move(column));
      group_exprs->push_back(std::move(bound));
    }

    agg_output_names_.clear();
    size_t agg_counter = 0;
    for (const SelectItem& item : expanded_items_) {
      if (item.expr->kind == AstExpr::Kind::kAggregate) {
        exec::AggregateItem agg;
        agg.fn = item.expr->agg_fn;
        if (item.expr->left != nullptr) {
          INSIGHTNOTES_ASSIGN_OR_RETURN(agg.arg, Bind(*item.expr->left, in));
        }
        agg.output_name =
            !item.alias.empty() ? item.alias : "agg" + std::to_string(agg_counter);
        agg_output_names_.push_back(agg.output_name);
        aggregates->push_back(std::move(agg));
        ++agg_counter;
      } else if (item.expr->ContainsAggregate()) {
        return Status::NotImplemented(
            "expressions over aggregates (e.g. COUNT(*)+1) are not supported");
      } else {
        // Non-aggregate item must match a GROUP BY expression.
        std::string key = AstToString(*item.expr);
        if (std::find(group_keys.begin(), group_keys.end(), key) == group_keys.end()) {
          return Status::InvalidArgument("select item '" + key +
                                         "' is neither aggregated nor in GROUP BY");
        }
        agg_output_names_.push_back("");  // Resolved via group column name.
      }
    }
    aggregated_ = true;
    return Status::OK();
  }

  Result<std::unique_ptr<exec::Operator>> ApplyAggregation(
      std::unique_ptr<exec::Operator> tree) {
    if (!HasAggregation()) return tree;
    std::vector<rel::ExprPtr> group_exprs;
    std::vector<rel::Column> group_columns;
    std::vector<exec::AggregateItem> aggregates;
    INSIGHTNOTES_RETURN_IF_ERROR(BindAggregation(
        tree->OutputSchema(), &group_exprs, &group_columns, &aggregates));
    return std::unique_ptr<exec::Operator>(std::make_unique<exec::AggregateOperator>(
        std::move(tree), std::move(group_exprs), std::move(group_columns),
        std::move(aggregates)));
  }

  Result<std::unique_ptr<exec::Operator>> ApplyOrderBy(
      std::unique_ptr<exec::Operator> tree) {
    if (stmt_.order_by.empty()) return tree;
    // Stable sorts compose: applying one stable sort per key from the
    // least-significant key to the most-significant yields the multi-key
    // ordering, and lets SUMMARY_COUNT keys (sorted by the dedicated
    // summary-aware operator) interleave with ordinary expression keys.
    for (size_t k = stmt_.order_by.size(); k-- > 0;) {
      const OrderItem& item = stmt_.order_by[k];
      if (item.expr->kind == AstExpr::Kind::kSummaryCount) {
        exec::SummaryCountSpec spec;
        spec.instance = item.expr->name;
        if (!item.expr->value.is_null()) spec.label = item.expr->value.AsString();
        tree = std::make_unique<exec::SummarySortOperator>(
            std::move(tree), std::move(spec), item.ascending);
        continue;
      }
      // Bind against the current (pre-final-projection) schema; aliases of
      // aggregate outputs are present there already.
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::ExprPtr bound,
                                    Bind(*item.expr, tree->OutputSchema()));
      std::vector<exec::SortKey> keys;
      keys.push_back(exec::SortKey{std::move(bound), item.ascending});
      tree = std::make_unique<exec::SortOperator>(std::move(tree), std::move(keys));
    }
    return tree;
  }

  /// The projection items of the final SELECT list against `in`. Shared by
  /// the serial top-of-plan projection and the parallel distinct shape
  /// (which projects inside every worker, below the partial operators).
  Result<std::vector<exec::ProjectionItem>> BuildFinalProjectionItems(
      const rel::Schema& in) {
    std::vector<exec::ProjectionItem> items;
    size_t agg_index = 0;
    for (size_t i = 0; i < expanded_items_.size(); ++i) {
      const SelectItem& item = expanded_items_[i];
      exec::ProjectionItem out;
      if (aggregated_) {
        std::string name;
        if (item.expr->kind == AstExpr::Kind::kAggregate) {
          name = agg_output_names_[agg_index];
        }
        ++agg_index;
        if (name.empty()) {
          // Group column: find it by its column/AST name.
          name = item.expr->kind == AstExpr::Kind::kColumn ? item.expr->name
                                                           : AstToString(*item.expr);
        }
        INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, in.IndexOf(name));
        const rel::Column& column = in.ColumnAt(index);
        out.expr = rel::MakeColumn(index, column.QualifiedName());
        out.output_name = !item.alias.empty() ? item.alias : column.name;
        out.qualifier = item.alias.empty() ? column.qualifier : "";
        out.type = column.type;
      } else {
        INSIGHTNOTES_ASSIGN_OR_RETURN(out.expr, Bind(*item.expr, in));
        if (item.expr->kind == AstExpr::Kind::kColumn) {
          INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, in.IndexOf(item.expr->name));
          const rel::Column& column = in.ColumnAt(index);
          out.output_name = !item.alias.empty() ? item.alias : column.name;
          out.qualifier = item.alias.empty() ? column.qualifier : "";
          out.type = column.type;
        } else {
          out.output_name =
              !item.alias.empty() ? item.alias : AstToString(*item.expr);
          out.type = rel::ValueType::kNull;
        }
      }
      items.push_back(std::move(out));
    }
    return items;
  }

  Result<std::unique_ptr<exec::Operator>> ApplyFinalProjection(
      std::unique_ptr<exec::Operator> tree) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(std::vector<exec::ProjectionItem> items,
                                  BuildFinalProjectionItems(tree->OutputSchema()));
    // Under normalization the trim already happened at the bottom of the
    // plan; this projection is pure plumbing (Figure 2 step 4: dropping
    // s.x after the join leaves summaries unchanged). The naive plan trims
    // here instead — late, after the merges.
    bool trim = !options_.project_before_merge;
    return std::unique_ptr<exec::Operator>(std::make_unique<exec::ProjectOperator>(
        std::move(tree), std::move(items), trim));
  }

  const SelectStatement& stmt_;
  core::Engine* engine_;
  PlannerOptions options_;

  std::vector<TableSlot> tables_;
  rel::Schema full_schema_;
  std::vector<SelectItem> expanded_items_;
  struct SummaryFilter {
    exec::SummaryCountSpec spec;
    rel::CompareOp op;
    int64_t threshold;
  };

  std::vector<const AstExpr*> join_conjuncts_;
  std::vector<const AstExpr*> residual_conjuncts_;
  std::vector<SummaryFilter> summary_filters_;
  // Cost-based plan choice (options_.optimize). join_order_ is identity
  // until RunOptimizer picks otherwise; stamp_ranks_ marks a reordered
  // plan whose leaves stamp per-table emission ranks for RestoreOrder.
  std::vector<size_t> join_order_;
  bool stamp_ranks_ = false;
  bool optimized_ = false;
  PlanChoice choice_;
  std::vector<std::string> agg_output_names_;
  bool aggregated_ = false;
  // Stages absorbed by the parallel section (partial + merge operators);
  // Plan() skips the corresponding serial stage.
  bool parallel_aggregated_ = false;
  bool parallel_sorted_ = false;
  bool parallel_projected_ = false;
  bool parallel_distinct_ = false;
};

}  // namespace

Result<std::unique_ptr<exec::Operator>> PlanSelect(const SelectStatement& stmt,
                                                   core::Engine* engine,
                                                   const PlannerOptions& options) {
  SelectPlanner planner(stmt, engine, options);
  return planner.Plan();
}

}  // namespace insightnotes::sql
