#include "sql/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace insightnotes::sql {

namespace {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// An index probe must return a superset of the rows the residual filter
/// keeps, under the same total order the filter evaluates with. Numeric
/// literals on numeric columns and string literals on string columns
/// compare identically in rel::ValueLess and rel::Value::Compare; anything
/// else (NULL literals, cross-class comparisons that would TypeError at
/// filter time) is excluded so both plans behave identically.
bool ProbeTypeCompatible(const rel::Value& lit, rel::ValueType column_type) {
  if (lit.is_null()) return false;
  bool lit_numeric = lit.type() == rel::ValueType::kInt64 ||
                     lit.type() == rel::ValueType::kFloat64;
  bool col_numeric = column_type == rel::ValueType::kInt64 ||
                     column_type == rel::ValueType::kFloat64;
  if (lit_numeric && col_numeric) return true;
  return lit.type() == rel::ValueType::kString &&
         column_type == rel::ValueType::kString;
}

/// Normalizes a comparison conjunct to <column> <op> <literal>; false when
/// it has a different shape.
bool NormalizeCompare(const AstExpr& pred, const AstExpr** column,
                      const AstExpr** literal, rel::CompareOp* op) {
  if (pred.kind != AstExpr::Kind::kCompare) return false;
  if (pred.left->kind == AstExpr::Kind::kColumn &&
      pred.right->kind == AstExpr::Kind::kLiteral) {
    *column = pred.left.get();
    *literal = pred.right.get();
    *op = pred.compare_op;
    return true;
  }
  if (pred.right->kind == AstExpr::Kind::kColumn &&
      pred.left->kind == AstExpr::Kind::kLiteral) {
    *column = pred.right.get();
    *literal = pred.left.get();
    switch (pred.compare_op) {
      case rel::CompareOp::kLt: *op = rel::CompareOp::kGt; break;
      case rel::CompareOp::kLe: *op = rel::CompareOp::kGe; break;
      case rel::CompareOp::kGt: *op = rel::CompareOp::kLt; break;
      case rel::CompareOp::kGe: *op = rel::CompareOp::kLe; break;
      default: *op = pred.compare_op; break;
    }
    return true;
  }
  return false;
}

AccessPath ChooseAccessPath(const OptimizerTable& slot, const CostModel& cost) {
  double rows = static_cast<double>(slot.table->NumRows());
  const rel::TableStats* stats = slot.stats.get();
  double selectivity = 1.0;
  for (const AstExpr* filter : slot.filters) {
    selectivity *= EstimateSelectivity(*filter, slot.schema, stats);
  }
  AccessPath path;
  path.est_rows = rows * selectivity;
  path.scan_rows = rows;
  path.cost = cost.seq_row * rows;

  for (const AstExpr* filter : slot.filters) {
    const AstExpr* column = nullptr;
    const AstExpr* literal = nullptr;
    rel::CompareOp op = rel::CompareOp::kEq;
    if (!NormalizeCompare(*filter, &column, &literal, &op)) continue;
    Result<size_t> position = slot.schema.IndexOf(column->name);
    if (!position.ok()) continue;
    if (slot.table->IndexOn(*position) == nullptr) continue;
    if (!ProbeTypeCompatible(literal->value,
                             slot.schema.ColumnAt(*position).type)) {
      continue;
    }
    exec::IndexProbeSpec probe;
    probe.column = *position;
    probe.column_name = slot.schema.ColumnAt(*position).name;
    switch (op) {
      case rel::CompareOp::kEq:
        probe.has_eq = true;
        probe.eq = literal->value;
        break;
      case rel::CompareOp::kLt:
      case rel::CompareOp::kLe:
        // Strict bounds widen to inclusive; the residual filter trims.
        probe.has_hi = true;
        probe.hi = literal->value;
        break;
      case rel::CompareOp::kGt:
      case rel::CompareOp::kGe:
        probe.has_lo = true;
        probe.lo = literal->value;
        break;
      default:
        continue;  // != cannot be probed.
    }
    double matched = rows * EstimateSelectivity(*filter, slot.schema, stats);
    double probe_cost = cost.index_probe + cost.index_row * matched;
    if (probe_cost < path.cost) {
      path.use_index = true;
      path.probe = std::move(probe);
      path.scan_rows = matched;
      path.cost = probe_cost;
    }
  }
  return path;
}

/// Cost of the left-deep plan joining in `order`. Infinite when
/// `require_connected` and some step has no equi conjunct into the prefix
/// (the identity order tolerates cross products — the executor plans a
/// nested loop there, and that fallback is never reordered away from).
double OrderCost(const std::vector<size_t>& order,
                 const std::vector<OptimizerTable>& tables,
                 const std::vector<OptimizerJoin>& joins,
                 const std::vector<AccessPath>& access, const CostModel& cost,
                 bool require_connected, bool charge_restore,
                 std::vector<double>* rows_after_step) {
  rows_after_step->clear();
  std::vector<bool> in_prefix(tables.size(), false);
  double total = access[order[0]].cost;
  double current = access[order[0]].est_rows;
  rows_after_step->push_back(current);
  in_prefix[order[0]] = true;
  for (size_t k = 1; k < order.size(); ++k) {
    size_t t = order[k];
    double right_rows = access[t].est_rows;
    total += access[t].cost + cost.build_row * right_rows +
             cost.probe_row * current;
    bool connected = false;
    double joined = current * right_rows;  // Cross product until proven joined.
    for (const OptimizerJoin& join : joins) {
      size_t prefix_side, t_side;
      const std::string *prefix_column, *t_column;
      if (join.left_table == t && in_prefix[join.right_table]) {
        t_side = join.left_table;
        t_column = &join.left_column;
        prefix_side = join.right_table;
        prefix_column = &join.right_column;
      } else if (join.right_table == t && in_prefix[join.left_table]) {
        t_side = join.right_table;
        t_column = &join.right_column;
        prefix_side = join.left_table;
        prefix_column = &join.left_column;
      } else {
        continue;
      }
      double prefix_ndv =
          ColumnNdv(tables[prefix_side].schema, *prefix_column,
                    tables[prefix_side].stats.get(),
                    /*fallback=*/access[prefix_side].est_rows);
      double t_ndv = ColumnNdv(tables[t_side].schema, *t_column,
                               tables[t_side].stats.get(),
                               /*fallback=*/right_rows);
      if (!connected) {
        joined = EstimateJoinRows(current, right_rows, prefix_ndv, t_ndv);
        connected = true;
      } else {
        // Additional conjuncts between the same prefix and table filter
        // further: 1 / max(ndv) each, independence-style.
        joined /= std::max(1.0, std::max(prefix_ndv, t_ndv));
      }
    }
    if (!connected) {
      if (require_connected) return kInfiniteCost;
      total += cost.cross_row * current * right_rows;
    }
    current = joined;
    total += cost.output_row * current;
    rows_after_step->push_back(current);
    in_prefix[t] = true;
  }
  if (charge_restore) total += cost.restore_row * current;
  return total;
}

/// Non-identity orders must keep annotated tables (linked summary
/// instances or stored annotations) in their FROM-relative order, so the
/// merged summary-object and attachment lists concatenate identically.
bool AnnotatedOrderPreserved(const std::vector<size_t>& order,
                             const std::vector<OptimizerTable>& tables) {
  size_t last = 0;
  bool seen = false;
  for (size_t slot : order) {
    if (!tables[slot].annotated) continue;
    if (seen && slot < last) return false;
    last = slot;
    seen = true;
  }
  return true;
}

/// Greedy order for wide joins: cheapest driver, then the connected table
/// with the smallest incremental cost. Empty when it gets stuck.
std::vector<size_t> GreedyOrder(const std::vector<OptimizerTable>& tables,
                                const std::vector<OptimizerJoin>& joins,
                                const std::vector<AccessPath>& access,
                                const CostModel& cost) {
  size_t n = tables.size();
  std::vector<size_t> best_order;
  double best_cost = kInfiniteCost;
  std::vector<double> scratch;
  for (size_t driver = 0; driver < n; ++driver) {
    std::vector<size_t> order = {driver};
    std::vector<bool> used(n, false);
    used[driver] = true;
    while (order.size() < n) {
      size_t pick = n;
      double pick_cost = kInfiniteCost;
      for (size_t t = 0; t < n; ++t) {
        if (used[t]) continue;
        order.push_back(t);
        double c = OrderCost(order, tables, joins, access, cost,
                             /*require_connected=*/true,
                             /*charge_restore=*/false, &scratch);
        order.pop_back();
        if (c < pick_cost) {
          pick_cost = c;
          pick = t;
        }
      }
      if (pick == n) break;  // No connected extension.
      order.push_back(pick);
      used[pick] = true;
    }
    if (order.size() != n) continue;
    double c = OrderCost(order, tables, joins, access, cost, true, true, &scratch);
    if (AnnotatedOrderPreserved(order, tables) && c < best_cost) {
      best_cost = c;
      best_order = order;
    }
  }
  return best_order;
}

}  // namespace

PlanChoice ChoosePlan(const std::vector<OptimizerTable>& tables,
                      const std::vector<OptimizerJoin>& joins,
                      size_t morsel_size, const CostModel& cost) {
  PlanChoice choice;
  size_t n = tables.size();
  choice.access.reserve(n);
  for (const OptimizerTable& slot : tables) {
    choice.access.push_back(ChooseAccessPath(slot, cost));
  }
  std::vector<size_t> identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  choice.join_order = identity;
  choice.total_cost =
      OrderCost(identity, tables, joins, choice.access, cost,
                /*require_connected=*/false, /*charge_restore=*/false,
                &choice.rows_after_step);

  // Non-identity orders need evidence: without ANALYZE stats on every
  // table, cardinalities are pure defaults and a reorder (plus its
  // RestoreOrder sort) would be a guess. The identity plan is the
  // rule-driven one, which stays the no-stats behavior.
  bool have_stats = true;
  for (const OptimizerTable& slot : tables) {
    if (slot.stats == nullptr) {
      have_stats = false;
      break;
    }
  }
  if (n >= 2 && !joins.empty() && have_stats) {
    std::vector<size_t> best_order;
    double best_cost = choice.total_cost;
    std::vector<double> best_rows, scratch;
    if (n <= 6) {
      std::vector<size_t> perm = identity;
      while (std::next_permutation(perm.begin(), perm.end())) {
        if (!AnnotatedOrderPreserved(perm, tables)) continue;
        double c = OrderCost(perm, tables, joins, choice.access, cost,
                             /*require_connected=*/true,
                             /*charge_restore=*/true, &scratch);
        if (c < best_cost) {
          best_cost = c;
          best_order = perm;
          best_rows = scratch;
        }
      }
    } else {
      std::vector<size_t> greedy = GreedyOrder(tables, joins, choice.access, cost);
      if (!greedy.empty() && greedy != identity) {
        double c = OrderCost(greedy, tables, joins, choice.access, cost, true,
                             true, &scratch);
        if (c < best_cost) {
          best_cost = c;
          best_order = greedy;
          best_rows = scratch;
        }
      }
    }
    if (!best_order.empty()) {
      choice.join_order = best_order;
      choice.reordered = true;
      choice.total_cost = best_cost;
      choice.rows_after_step = best_rows;
    }
  }

  choice.est_result_rows =
      choice.rows_after_step.empty() ? 0 : choice.rows_after_step.back();
  choice.serial = choice.access[choice.join_order[0]].scan_rows <
                  static_cast<double>(morsel_size);
  return choice;
}

}  // namespace insightnotes::sql
