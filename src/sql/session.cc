#include "sql/session.h"

#include <sstream>

#include "common/string_util.h"
#include "exec/metrics.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace insightnotes::sql {

namespace {

Result<ExecutionOutput> RunSelect(const SelectStatement& stmt, core::Engine* engine,
                                  const PlannerOptions& options,
                                  const std::shared_ptr<exec::QueryContext>& context,
                                  core::QueryId qid,
                                  std::vector<core::TraceEvent>* trace) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto plan, PlanSelect(stmt, engine, options));
  plan->SetQueryContext(context);
  core::ExecuteOptions exec_options;
  exec_options.qid = qid;
  exec_options.trace = trace;
  INSIGHTNOTES_ASSIGN_OR_RETURN(
      core::QueryResult result,
      engine->Execute(std::move(plan), std::move(exec_options)));
  ExecutionOutput out;
  out.kind = ExecutionOutput::Kind::kRows;
  out.result = std::move(result);
  return out;
}

/// SET knobs treat any negative value as "off".
int64_t ClampNonNegative(int64_t value) { return value < 0 ? 0 : value; }

Result<ExecutionOutput> RunCreateTable(const CreateTableStatement& stmt,
                                       core::Engine* engine) {
  rel::Schema schema;
  for (const auto& [name, type] : stmt.columns) {
    schema.AddColumn(rel::Column{name, type, stmt.table});
  }
  INSIGHTNOTES_RETURN_IF_ERROR(engine->CreateTable(stmt.table, schema).status());
  ExecutionOutput out;
  out.message = "created table " + stmt.table;
  return out;
}

Result<ExecutionOutput> RunInsert(const InsertStatement& stmt, core::Engine* engine) {
  for (const auto& row : stmt.rows) {
    INSIGHTNOTES_RETURN_IF_ERROR(
        engine->Insert(stmt.table, rel::Tuple(row)).status());
  }
  ExecutionOutput out;
  out.message = "inserted " + std::to_string(stmt.rows.size()) + " row(s) into " +
                stmt.table;
  return out;
}

Result<ExecutionOutput> RunAnnotate(const AnnotateStatement& stmt,
                                    core::Engine* engine) {
  core::AnnotateSpec spec;
  spec.table = stmt.table;
  spec.row = stmt.row;
  spec.body = stmt.body;
  if (!stmt.author.empty()) spec.author = stmt.author;
  spec.kind =
      stmt.is_document ? ann::AnnotationKind::kDocument : ann::AnnotationKind::kComment;
  spec.title = stmt.title;
  // Resolve column names to positions.
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table,
                                engine->catalog()->GetTable(stmt.table));
  for (const std::string& column : stmt.columns) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, table->schema().IndexOf(column));
    spec.columns.push_back(index);
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id, engine->Annotate(spec));
  ExecutionOutput out;
  out.message = "annotation " + std::to_string(id) + " added to " + stmt.table +
                " row " + std::to_string(stmt.row);
  return out;
}

Result<ExecutionOutput> RunZoomIn(const ZoomInStatement& stmt, core::Engine* engine) {
  core::ZoomInRequest request;
  request.qid = stmt.qid;
  request.instance_name = stmt.instance;
  request.component_index = stmt.index;
  if (stmt.where != nullptr) {
    // The predicate references the *result's* columns (Figure 3): bind it
    // against the referenced query's output schema.
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Schema schema, engine->SchemaOf(stmt.qid));
    INSIGHTNOTES_ASSIGN_OR_RETURN(request.predicate, Bind(*stmt.where, schema));
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(core::ZoomInResult zoom, engine->ZoomIn(request));
  ExecutionOutput out;
  out.kind = ExecutionOutput::Kind::kZoomIn;
  out.zoom = std::move(zoom);
  return out;
}

Result<ExecutionOutput> RunCreateInstance(const CreateInstanceStatement& stmt,
                                          core::Engine* engine) {
  std::unique_ptr<core::SummaryInstance> instance;
  switch (stmt.type) {
    case CreateInstanceStatement::Type::kClassifier:
      instance = core::SummaryInstance::MakeClassifier(stmt.name, stmt.labels);
      break;
    case CreateInstanceStatement::Type::kCluster:
      instance = core::SummaryInstance::MakeCluster(stmt.name, stmt.threshold);
      break;
    case CreateInstanceStatement::Type::kSnippet: {
      mining::SnippetOptions options;
      options.max_sentences = stmt.snippet_sentences;
      options.max_chars = stmt.snippet_chars;
      instance = core::SummaryInstance::MakeSnippet(stmt.name, options);
      break;
    }
  }
  INSIGHTNOTES_RETURN_IF_ERROR(engine->RegisterInstance(std::move(instance)));
  ExecutionOutput out;
  out.message = "created summary instance " + stmt.name;
  return out;
}

Result<ExecutionOutput> RunTrain(const TrainInstanceStatement& stmt,
                                 core::Engine* engine) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(core::SummaryInstance * instance,
                                engine->summaries()->GetInstance(stmt.instance));
  if (instance->type() != core::SummaryTypeKind::kClassifier) {
    return Status::InvalidArgument("TRAIN applies to classifier instances only");
  }
  auto* classifier = instance->classifier();
  const auto& labels = classifier->labels();
  size_t label_index = labels.size();
  for (size_t i = 0; i < labels.size(); ++i) {
    if (EqualsIgnoreCase(labels[i], stmt.label)) {
      label_index = i;
      break;
    }
  }
  if (label_index == labels.size()) {
    return Status::NotFound("instance '" + stmt.instance + "' has no label '" +
                            stmt.label + "'");
  }
  INSIGHTNOTES_RETURN_IF_ERROR(classifier->Train(label_index, stmt.text));
  ExecutionOutput out;
  out.message = "trained " + stmt.instance + " label " + stmt.label;
  return out;
}

Result<ExecutionOutput> RunLink(const LinkStatement& stmt, core::Engine* engine) {
  if (stmt.link) {
    INSIGHTNOTES_RETURN_IF_ERROR(engine->LinkInstance(stmt.instance, stmt.table));
  } else {
    INSIGHTNOTES_RETURN_IF_ERROR(engine->UnlinkInstance(stmt.instance, stmt.table));
  }
  ExecutionOutput out;
  out.message = std::string(stmt.link ? "linked" : "unlinked") + " summary " +
                stmt.instance + (stmt.link ? " to " : " from ") + stmt.table;
  return out;
}

std::string RenderCacheStats(const core::ZoomInCache& cache) {
  core::CacheStats stats = cache.stats();
  std::ostringstream os;
  os << "cache [" << CachePolicyToString(cache.policy()) << "]: hits=" << stats.hits
     << " misses=" << stats.misses << " insertions=" << stats.insertions
     << " evictions=" << stats.evictions << " rejected=" << stats.rejected
     << " bytes=" << stats.bytes_used << "/" << cache.budget_bytes();
  return os.str();
}

}  // namespace

Result<ExecutionOutput> SqlSession::Execute(std::string_view sql,
                                            std::vector<core::TraceEvent>* trace) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(Statement statement, Parse(sql));
  if (auto* select = std::get_if<SelectStatement>(&statement)) {
    PlannerOptions options = planner_options_;
    // Tracing observes per-operator tuple order; keep the legacy serial
    // rule-driven plan (optimizer plans may reorder operator events).
    options.parallelism = trace != nullptr ? 1 : parallelism_;
    options.optimize = optimizer_enabled_ && trace == nullptr;
    context_->BeginStatement(statement_timeout_ms_, memory_limit_bytes_);
    return RunSelect(*select, engine_, options, context_, NextQid(), trace);
  }
  if (auto* set = std::get_if<SetStatement>(&statement)) {
    if (EqualsIgnoreCase(set->name, "optimizer")) {
      optimizer_enabled_ = set->value != 0;
      ExecutionOutput out;
      out.message = std::string("optimizer = ") + (optimizer_enabled_ ? "on" : "off");
      return out;
    }
    if (EqualsIgnoreCase(set->name, "parallelism")) {
      parallelism_ = static_cast<size_t>(std::max<int64_t>(1, set->value));
      ExecutionOutput out;
      out.message = "parallelism = " + std::to_string(parallelism_);
      return out;
    }
    if (EqualsIgnoreCase(set->name, "statement_timeout")) {
      statement_timeout_ms_ = ClampNonNegative(set->value);
      ExecutionOutput out;
      out.message =
          statement_timeout_ms_ > 0
              ? "statement_timeout = " + std::to_string(statement_timeout_ms_) + " ms"
              : "statement_timeout = off";
      return out;
    }
    if (EqualsIgnoreCase(set->name, "memory_limit")) {
      memory_limit_bytes_ = static_cast<size_t>(ClampNonNegative(set->value));
      ExecutionOutput out;
      out.message = memory_limit_bytes_ > 0
                        ? "memory_limit = " + std::to_string(memory_limit_bytes_) +
                              " bytes"
                        : "memory_limit = off";
      return out;
    }
    return Status::InvalidArgument("unknown session knob '" + set->name + "'");
  }
  if (auto* explain = std::get_if<ExplainStatement>(&statement)) {
    if (explain->is_zoom_in) {
      const ZoomInStatement& zoom_stmt = explain->zoom_in;
      ExecutionOutput out;
      if (!explain->analyze) {
        // Plan shape without executing: the serve path the zoom-in would
        // take plus the shared result cache's current state.
        INSIGHTNOTES_RETURN_IF_ERROR(engine_->SchemaOf(zoom_stmt.qid).status());
        std::ostringstream os;
        os << "ZoomIn(QID " << zoom_stmt.qid;
        if (!zoom_stmt.instance.empty()) os << ", instance=" << zoom_stmt.instance;
        os << ", component=" << (zoom_stmt.index + 1) << ")\n";
        os << "  serve: "
           << (engine_->cache()->Contains(zoom_stmt.qid)
                   ? "cached result snapshot"
                   : "re-execute retained plan")
           << "\n";
        os << "  " << RenderCacheStats(*engine_->cache());
        out.message = os.str();
        return out;
      }
      INSIGHTNOTES_ASSIGN_OR_RETURN(ExecutionOutput zoom_out,
                                    RunZoomIn(zoom_stmt, engine_));
      size_t annotations = 0;
      for (const core::ZoomInRowResult& row : zoom_out.zoom.rows) {
        annotations += row.annotations.size();
      }
      std::ostringstream os;
      os << "ZoomIn(QID " << zoom_stmt.qid << "): "
         << (zoom_out.zoom.served_from_cache ? "[cache hit]" : "[re-executed]")
         << " " << zoom_out.zoom.rows.size() << " row(s), " << annotations
         << " annotation(s)\n";
      os << "  " << RenderCacheStats(*engine_->cache());
      out.message = os.str();
      return out;
    }
    PlannerOptions options = planner_options_;
    options.parallelism = parallelism_;
    options.optimize = optimizer_enabled_;
    INSIGHTNOTES_ASSIGN_OR_RETURN(auto plan,
                                  PlanSelect(explain->select, engine_, options));
    ExecutionOutput out;
    if (!explain->analyze) {
      out.message = exec::RenderPlan(plan.get());
      return out;
    }
    exec::Operator* root = plan.get();
    root->SetMetricsEnabled(true);
    plan->SetQueryContext(context_);
    context_->BeginStatement(statement_timeout_ms_, memory_limit_bytes_);
    core::ExecuteOptions exec_options;
    exec_options.qid = NextQid();
    // The engine retains the plan for zoom-in re-execution, so `root`
    // outlives Execute and the counters can be snapshotted afterwards.
    INSIGHTNOTES_ASSIGN_OR_RETURN(
        core::QueryResult result,
        engine_->Execute(std::move(plan), std::move(exec_options)));
    std::ostringstream os;
    os << exec::RenderPlanMetrics(exec::CollectPlanMetrics(root));
    os << "QID " << result.qid << ": " << result.rows.size() << " row(s)";
    out.message = os.str();
    return out;
  }
  if (auto* create = std::get_if<CreateTableStatement>(&statement)) {
    return RunCreateTable(*create, engine_);
  }
  if (auto* insert = std::get_if<InsertStatement>(&statement)) {
    return RunInsert(*insert, engine_);
  }
  if (auto* annotate = std::get_if<AnnotateStatement>(&statement)) {
    return RunAnnotate(*annotate, engine_);
  }
  if (auto* zoomin = std::get_if<ZoomInStatement>(&statement)) {
    return RunZoomIn(*zoomin, engine_);
  }
  if (auto* create_instance = std::get_if<CreateInstanceStatement>(&statement)) {
    return RunCreateInstance(*create_instance, engine_);
  }
  if (auto* train = std::get_if<TrainInstanceStatement>(&statement)) {
    return RunTrain(*train, engine_);
  }
  if (auto* link = std::get_if<LinkStatement>(&statement)) {
    return RunLink(*link, engine_);
  }
  if (auto* analyze = std::get_if<AnalyzeStatement>(&statement)) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t rows, engine_->Analyze(analyze->table));
    ExecutionOutput out;
    out.message = "analyzed " + analyze->table + ": " + std::to_string(rows) +
                  " row(s)";
    return out;
  }
  if (auto* create_index = std::get_if<CreateIndexStatement>(&statement)) {
    INSIGHTNOTES_RETURN_IF_ERROR(
        engine_->CreateIndex(create_index->table, create_index->column));
    ExecutionOutput out;
    out.message = "created index on " + create_index->table + "(" +
                  create_index->column + ")";
    return out;
  }
  return Status::Internal("unhandled statement kind");
}

std::string FormatResult(const core::QueryResult& result, bool show_summaries) {
  std::ostringstream os;
  os << "QID " << result.qid << " (" << result.rows.size() << " rows)\n";
  for (size_t i = 0; i < result.schema.NumColumns(); ++i) {
    if (i > 0) os << " | ";
    os << result.schema.ColumnAt(i).QualifiedName();
  }
  os << "\n";
  for (const core::AnnotatedTuple& row : result.rows) {
    for (size_t i = 0; i < row.tuple.NumValues(); ++i) {
      if (i > 0) os << " | ";
      os << row.tuple.ValueAt(i).ToString();
    }
    if (show_summaries && !row.summaries.empty()) {
      os << "   ||";
      for (const auto& summary : row.summaries) {
        os << " " << summary->instance_name() << "=" << summary->Render();
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string FormatZoomIn(const core::ZoomInResult& zoom) {
  std::ostringstream os;
  os << (zoom.served_from_cache ? "[cache hit]" : "[re-executed]") << "\n";
  for (const core::ZoomInRowResult& row : zoom.rows) {
    os << "row " << row.row_index << " " << row.tuple.ToString() << " ["
       << row.component_label << "]: " << row.annotations.size()
       << " annotation(s)\n";
    for (const ann::Annotation& note : row.annotations) {
      os << "  - A" << note.id << " by " << note.author;
      if (note.archived) os << " [archived]";
      os << ": " << Ellipsize(note.title.empty() ? note.body : note.title + " — " + note.body, 100)
         << "\n";
    }
  }
  return os.str();
}

}  // namespace insightnotes::sql
