#include "sql/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/string_util.h"

namespace insightnotes::sql {

namespace {

// Sorted for binary search.
constexpr std::array<std::string_view, 59> kKeywords = {
    "ANALYZE",  "AND",      "ANNOTATE", "AS",      "ASC",     "AUTHOR",
    "AVG",
    "BIGINT",   "BY",       "CLASSIFIER", "CLUSTER", "COLUMNS", "COUNT",
    "CREATE",   "DESC",     "DISTINCT", "DOCUMENT", "DOUBLE",  "EXPLAIN",
    "FLOAT",
    "FROM",     "GROUP",    "INDEX",   "INSERT",  "INSTANCE", "INT",
    "INTO",     "LABEL",    "LABELS",  "LIMIT",   "LINK",     "MAX",
    "MIN",      "NOT",      "NULL",    "ON",      "OR",       "ORDER",
    "PROPERTIES", "QID",    "REFERENCE", "ROW",   "SELECT",   "SET",
    "SNIPPET",
    "SUM",      "SUMMARY",  "SUMMARY_COUNT", "TABLE", "TEXT", "THRESHOLD",
    "TITLE",
    "TO",       "TRAIN",    "UNLINK",  "VALUES",  "WHERE",   "WITH",
    "ZOOMIN",
};

static_assert(std::is_sorted(kKeywords.begin(), kKeywords.end()),
              "keyword table must stay sorted");

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(std::string_view word) {
  std::string upper = ToUpper(word);
  return std::binary_search(kKeywords.begin(), kKeywords.end(), upper);
}

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < sql.size() && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      if (IsKeyword(word)) {
        token.type = TokenType::kKeyword;
        token.text = ToUpper(word);
      } else {
        token.type = TokenType::kIdentifier;
        token.text = std::move(word);
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i + 1 < sql.size() && sql[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string number(sql.substr(start, i - start));
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::stod(number);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::stoll(number);
      }
      token.text = std::move(number);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {  // Escaped quote.
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(value);
    } else {
      // Symbols; multi-char first.
      static constexpr std::string_view kTwoChar[] = {"!=", "<>", "<=", ">="};
      std::string_view rest = sql.substr(i);
      std::string symbol;
      for (std::string_view two : kTwoChar) {
        if (rest.substr(0, 2) == two) {
          symbol = std::string(two);
          break;
        }
      }
      if (symbol.empty()) {
        static constexpr std::string_view kOneChar = ",().*=<>+-/;";
        if (kOneChar.find(c) == std::string_view::npos) {
          return Status::ParseError("unexpected character '" + std::string(1, c) +
                                    "' at offset " + std::to_string(i));
        }
        symbol = std::string(1, c);
      }
      token.type = TokenType::kSymbol;
      token.text = symbol;
      i += symbol.size();
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = sql.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace insightnotes::sql
