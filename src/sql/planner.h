// Planner: lowers a SELECT AST into a summary-aware operator tree.
//
// The key InsightNotes rule (Theorems 1 & 2 of the full paper) is encoded
// here: the planner pushes a projection onto every base-table scan that
// eliminates the effect of annotations on never-referenced columns *before*
// any merge operator (join / group-by / distinct) runs. With normalization
// on, all equivalent formulations of a query propagate identical summary
// objects; `project_before_merge = false` exposes the naive pull-up plan
// for the ablation experiment (E6).

#ifndef INSIGHTNOTES_SQL_PLANNER_H_
#define INSIGHTNOTES_SQL_PLANNER_H_

#include <functional>
#include <memory>

#include "core/engine.h"
#include "exec/operator.h"
#include "sql/ast.h"

namespace insightnotes::sql {

struct PlannerOptions {
  /// Apply the Theorem 1&2 normalization (default on).
  bool project_before_merge = true;
  /// Cost-based optimization (sql/optimizer.h): join reordering, index-
  /// backed access paths and parallelism choice from ANALYZE statistics.
  /// Off by default — the rule-driven plan is the canonical reference; the
  /// optimizer's plans are byte-identical in results but differently
  /// shaped. SqlSession turns this on unless `SET OPTIMIZER = OFF`.
  bool optimize = false;
  /// Worker pipelines of the morsel-driven parallel section. 1 (default)
  /// plans the legacy serial tree. N > 1 replicates the per-tuple section
  /// of eligible plans (scan / filter / projection / equi-join probe /
  /// summary filter) into N pipelines over a shared morsel source, gathered
  /// in morsel order — results are byte-identical to serial execution.
  /// Plans needing a cross product fall back to the serial tree.
  size_t parallelism = 1;
  /// Tuples per morsel handed to a parallel-scan worker.
  size_t morsel_size = 256;
  /// Test seam: wraps each worker pipeline of the parallel section (after
  /// the per-tuple stages, before any blocking partial operator) — e.g. in
  /// an exec::FaultInjectingOperator for the fault sweep. Called once per
  /// worker with the pipeline and its worker index; must return the
  /// (possibly wrapped) pipeline. Null = no wrapping. Serial plans
  /// (parallelism 1 without a parallel section) are not wrapped.
  std::function<std::unique_ptr<exec::Operator>(std::unique_ptr<exec::Operator>,
                                                size_t)>
      wrap_worker_pipeline;
};

/// Builds an executable operator tree for `stmt` against `engine`'s catalog.
Result<std::unique_ptr<exec::Operator>> PlanSelect(const SelectStatement& stmt,
                                                   core::Engine* engine,
                                                   const PlannerOptions& options = {});

}  // namespace insightnotes::sql

#endif  // INSIGHTNOTES_SQL_PLANNER_H_
