// Catalog: name -> Table registry. Owns table objects; tables share the
// engine-wide buffer pool.

#ifndef INSIGHTNOTES_REL_CATALOG_H_
#define INSIGHTNOTES_REL_CATALOG_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rel/table.h"

namespace insightnotes::rel {

/// Thread-safe: a shared_mutex guards the registry (Create/Drop exclusive,
/// lookups shared). Table pointers stay valid until DropTable.
class Catalog {
 public:
  /// `pool` must outlive the catalog.
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name) const;
  Result<Table*> GetTableById(TableId id) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  storage::BufferPool* pool_;
  mutable std::shared_mutex latch_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<TableId, Table*> by_id_;
  TableId next_id_ = 0;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_CATALOG_H_
