// Value: the dynamically-typed cell value of the relational engine.

#ifndef INSIGHTNOTES_REL_VALUE_H_
#define INSIGHTNOTES_REL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace insightnotes::rel {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
};

std::string_view ValueTypeToString(ValueType type);

/// A nullable SQL value: NULL, BIGINT, DOUBLE or TEXT. Ordered comparisons
/// between numeric types coerce int to double; comparing a string with a
/// number is a type error.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(std::string_view v) : data_(std::string(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the value must hold the requested type.
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsFloat64() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric value as double (int coerced); TypeError for strings/null.
  Result<double> ToNumeric() const;

  /// SQL-style three-valued comparison is simplified to: NULL equals NULL
  /// and sorts first (needed for grouping/distinct semantics).
  /// Returns <0, 0, >0; TypeError on string-vs-number comparisons.
  Result<int> Compare(const Value& other) const;

  /// Equality consistent with Compare()==0; incompatible types are unequal.
  bool operator==(const Value& other) const;

  /// Hash consistent with operator== (numeric 5 and 5.0 hash alike).
  uint64_t Hash() const;

  /// Display form: NULL, 42, 3.14, or the raw string.
  std::string ToString() const;

  /// Binary serialization (appends to `out`): [type u8][payload].
  void Serialize(std::string* out) const;

  /// Deserializes one value from `in` advancing `*offset`.
  static Result<Value> Deserialize(std::string_view in, size_t* offset);

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_VALUE_H_
