// Tuple: a row of Values, serializable into heap-file records.

#ifndef INSIGHTNOTES_REL_TUPLE_H_
#define INSIGHTNOTES_REL_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace insightnotes::rel {

/// Stable identifier of a base-table row; annotations attach to it.
using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = static_cast<RowId>(-1);

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t NumValues() const { return values_.size(); }
  const Value& ValueAt(size_t i) const { return values_[i]; }
  Value& MutableValueAt(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation for joins.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Serialization: [count u16][value]*.
  void Serialize(std::string* out) const;
  static Result<Tuple> Deserialize(std::string_view in);

  /// Hash/equality over all values (grouping, distinct).
  uint64_t Hash() const;
  bool operator==(const Tuple& other) const;

  /// "(1, swan, 3.2)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_TUPLE_H_
