#include "rel/schema.h"

namespace insightnotes::rel {

Result<size_t> Schema::IndexOf(std::string_view name) const {
  // Qualified lookup: split at the first dot.
  size_t dot = name.find('.');
  if (dot != std::string_view::npos) {
    std::string_view qualifier = name.substr(0, dot);
    std::string_view bare = name.substr(dot + 1);
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].qualifier == qualifier && columns_[i].name == bare) return i;
    }
    return Status::NotFound("column '" + std::string(name) + "' not in schema " +
                            ToString());
  }
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      if (found != columns_.size()) {
        return Status::InvalidArgument("column '" + std::string(name) +
                                       "' is ambiguous in schema " + ToString());
      }
      found = i;
    }
  }
  if (found == columns_.size()) {
    return Status::NotFound("column '" + std::string(name) + "' not in schema " +
                            ToString());
  }
  return found;
}

Schema Schema::WithQualifier(std::string_view qualifier) const {
  Schema out = *this;
  for (Column& c : out.columns_) c.qualifier = std::string(qualifier);
  return out;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema out = left;
  for (const Column& c : right.columns_) out.columns_.push_back(c);
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName();
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace insightnotes::rel
