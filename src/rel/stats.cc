#include "rel/stats.h"

#include <algorithm>
#include <sstream>

#include "rel/index.h"

namespace insightnotes::rel {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string HexEncode(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}

Result<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return Status::InvalidArgument("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  std::string bytes;
  v.Serialize(&bytes);
  return HexEncode(bytes);
}

Result<Value> DecodeValue(std::string_view hex) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(std::string bytes, HexDecode(hex));
  size_t offset = 0;
  INSIGHTNOTES_ASSIGN_OR_RETURN(Value v, Value::Deserialize(bytes, &offset));
  if (offset != bytes.size()) return Status::InvalidArgument("trailing value bytes");
  return v;
}

bool ValueLt(const Value& a, const Value& b) { return ValueLess{}(a, b); }

/// Linear position of v inside (lo, hi], for numeric bounds; 0.5 otherwise.
double Interpolate(const Value& lo, const Value& v, const Value& hi) {
  auto lo_n = lo.ToNumeric();
  auto hi_n = hi.ToNumeric();
  auto v_n = v.ToNumeric();
  if (!lo_n.ok() || !hi_n.ok() || !v_n.ok()) return 0.5;
  double span = *hi_n - *lo_n;
  if (span <= 0) return 1.0;
  double t = (*v_n - *lo_n) / span;
  return std::clamp(t, 0.0, 1.0);
}

}  // namespace

double ColumnStats::FractionBelow(const Value& v) const {
  if (bounds.empty() || non_null_count == 0) return 0.5;
  if (!ValueLt(bounds.front(), v)) return 0.0;  // v <= min.
  if (ValueLt(bounds.back(), v)) return 1.0;    // v > max.
  size_t num_buckets = bounds.size() - 1;
  if (num_buckets == 0) return 0.5;
  // First boundary at or above v: v falls in bucket (bounds[j-1], bounds[j]].
  size_t j = 1;
  while (j < bounds.size() && ValueLt(bounds[j], v)) ++j;
  double t = Interpolate(bounds[j - 1], v, bounds[j]);
  return (static_cast<double>(j - 1) + t) / static_cast<double>(num_buckets);
}

double ColumnStats::EqSelectivity(const Value& v) const {
  uint64_t total = non_null_count + null_count;
  if (total == 0) return 0.0;
  if (v.is_null()) return static_cast<double>(null_count) / total;
  if (non_null_count == 0 || ndv == 0) return 0.0;
  if (ValueLt(v, min) || ValueLt(max, v)) return 0.0;  // Outside [min, max].
  return (1.0 / static_cast<double>(ndv)) * NonNullFraction();
}

double ColumnStats::RangeSelectivity(const Value* lo, bool lo_inclusive,
                                     const Value* hi, bool hi_inclusive) const {
  if (non_null_count == 0) return 0.0;
  double eq_mass = ndv == 0 ? 0.0 : 1.0 / static_cast<double>(ndv);
  auto in_range = [&](const Value& v) {
    return !ValueLt(v, min) && !ValueLt(max, v);
  };
  double ub = 1.0;
  if (hi != nullptr) {
    ub = FractionBelow(*hi);
    if (hi_inclusive && in_range(*hi)) ub += eq_mass;
  }
  double lb = 0.0;
  if (lo != nullptr) {
    lb = FractionBelow(*lo);
    if (!lo_inclusive && in_range(*lo)) lb += eq_mass;
  }
  return std::clamp(ub - lb, 0.0, 1.0) * NonNullFraction();
}

double TableStats::AnnCountSelectivity(CompareOp op, int64_t k) const {
  uint64_t total = 0;
  for (const auto& [count, rows] : ann_count_freq) total += rows;
  if (total == 0) return 0.5;
  uint64_t matching = 0;
  for (const auto& [count, rows] : ann_count_freq) {
    bool hit = false;
    switch (op) {
      case CompareOp::kEq: hit = count == k; break;
      case CompareOp::kNe: hit = count != k; break;
      case CompareOp::kLt: hit = count < k; break;
      case CompareOp::kLe: hit = count <= k; break;
      case CompareOp::kGt: hit = count > k; break;
      case CompareOp::kGe: hit = count >= k; break;
    }
    if (hit) matching += rows;
  }
  return static_cast<double>(matching) / static_cast<double>(total);
}

std::string TableStats::ToText() const {
  std::ostringstream os;
  os << "rows " << row_count << "\n";
  os << "annotated " << annotated_rows << " " << total_annotations << "\n";
  os << "anncount";
  for (const auto& [count, rows] : ann_count_freq) os << " " << count << ":" << rows;
  os << "\n";
  for (const InstanceDensity& d : instances) {
    os << "instance " << HexEncode(d.instance) << " " << d.annotated_rows << " "
       << d.total_annotations << "\n";
  }
  for (const ColumnStats& c : columns) {
    os << "column " << c.non_null_count << " " << c.null_count << " " << c.ndv
       << " " << EncodeValue(c.min) << " " << EncodeValue(c.max);
    for (const Value& b : c.bounds) os << " " << EncodeValue(b);
    os << "\n";
  }
  return os.str();
}

Result<TableStats> TableStats::FromText(std::string_view text) {
  TableStats stats;
  std::istringstream in{std::string(text)};
  std::string line;
  bool saw_rows = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "rows") {
      if (!(ls >> stats.row_count)) return Status::InvalidArgument("bad rows line");
      saw_rows = true;
    } else if (tag == "annotated") {
      if (!(ls >> stats.annotated_rows >> stats.total_annotations)) {
        return Status::InvalidArgument("bad annotated line");
      }
    } else if (tag == "anncount") {
      std::string pair;
      while (ls >> pair) {
        size_t colon = pair.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument("bad anncount pair '" + pair + "'");
        }
        try {
          stats.ann_count_freq.emplace_back(
              std::stoll(pair.substr(0, colon)),
              static_cast<uint64_t>(std::stoull(pair.substr(colon + 1))));
        } catch (const std::exception&) {
          return Status::InvalidArgument("bad anncount pair '" + pair + "'");
        }
      }
    } else if (tag == "instance") {
      InstanceDensity d;
      std::string hexname;
      if (!(ls >> hexname >> d.annotated_rows >> d.total_annotations)) {
        return Status::InvalidArgument("bad instance line");
      }
      INSIGHTNOTES_ASSIGN_OR_RETURN(d.instance, HexDecode(hexname));
      stats.instances.push_back(std::move(d));
    } else if (tag == "column") {
      ColumnStats c;
      std::string min_hex, max_hex;
      if (!(ls >> c.non_null_count >> c.null_count >> c.ndv >> min_hex >> max_hex)) {
        return Status::InvalidArgument("bad column line");
      }
      INSIGHTNOTES_ASSIGN_OR_RETURN(c.min, DecodeValue(min_hex));
      INSIGHTNOTES_ASSIGN_OR_RETURN(c.max, DecodeValue(max_hex));
      std::string bound_hex;
      while (ls >> bound_hex) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(Value b, DecodeValue(bound_hex));
        c.bounds.push_back(std::move(b));
      }
      stats.columns.push_back(std::move(c));
    } else {
      return Status::InvalidArgument("unknown stats line tag '" + tag + "'");
    }
  }
  if (!saw_rows) return Status::InvalidArgument("stats text missing rows line");
  return stats;
}

ColumnStats BuildColumnStats(std::vector<Value> values, size_t num_buckets) {
  ColumnStats stats;
  std::vector<Value> non_null;
  non_null.reserve(values.size());
  for (Value& v : values) {
    if (v.is_null()) {
      ++stats.null_count;
    } else {
      non_null.push_back(std::move(v));
    }
  }
  stats.non_null_count = non_null.size();
  if (non_null.empty()) return stats;
  std::sort(non_null.begin(), non_null.end(), ValueLess{});
  stats.ndv = 1;
  for (size_t i = 1; i < non_null.size(); ++i) {
    if (!(non_null[i] == non_null[i - 1])) ++stats.ndv;
  }
  stats.min = non_null.front();
  stats.max = non_null.back();
  size_t n = non_null.size();
  size_t buckets = std::max<size_t>(1, std::min(num_buckets, n));
  stats.bounds.reserve(buckets + 1);
  stats.bounds.push_back(non_null.front());
  for (size_t i = 1; i <= buckets; ++i) {
    stats.bounds.push_back(non_null[(i * n) / buckets - 1]);
  }
  return stats;
}

}  // namespace insightnotes::rel
