#include "rel/table.h"

namespace insightnotes::rel {

void TableIndex::Insert(const Value& key, RowId row) {
  if (tree_ == nullptr) {
    mem_.Insert(key, row);
    return;
  }
  if (!broken_.ok()) return;  // Already diverged; reopen heals it.
  Status s = tree_->InsertForRow(key, row);
  if (!s.ok()) broken_ = s;
}

Status TableIndex::Remove(const Value& key, RowId row) {
  if (tree_ == nullptr) return mem_.Remove(key, row);
  if (!broken_.ok()) return Status::OK();
  Status s = tree_->RemoveForRow(key, row);
  // Any persistent-backing failure — NotFound included: a missing covered
  // entry means the tree diverged from the heap — breaks the index rather
  // than the row mutation.
  if (!s.ok()) broken_ = s;
  return Status::OK();
}

Status TableIndex::LookupInto(const Value& key, std::vector<RowId>* out) const {
  if (!broken_.ok()) return broken_;
  if (tree_ == nullptr) {
    mem_.LookupInto(key, out);
    return Status::OK();
  }
  return tree_->LookupInto(key, out);
}

Status TableIndex::RangeInto(const Value* lo, const Value* hi,
                             std::vector<RowId>* out) const {
  if (!broken_.ok()) return broken_;
  if (tree_ == nullptr) {
    mem_.RangeInto(lo, hi, out);
    return Status::OK();
  }
  return tree_->RangeInto(lo, hi, out);
}

Status Table::CheckTuple(const Tuple& tuple) const {
  if (tuple.NumValues() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.NumValues()) + " does not match " +
        name_ + "'s schema " + schema_.ToString());
  }
  for (size_t i = 0; i < tuple.NumValues(); ++i) {
    const Value& v = tuple.ValueAt(i);
    if (v.is_null()) continue;
    if (v.type() != schema_.ColumnAt(i).type) {
      return Status::TypeError("column '" + schema_.ColumnAt(i).QualifiedName() +
                               "' expects " +
                               std::string(ValueTypeToString(schema_.ColumnAt(i).type)) +
                               " but got " + std::string(ValueTypeToString(v.type())));
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(const Tuple& tuple) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckTuple(tuple));
  std::string bytes;
  tuple.Serialize(&bytes);
  std::unique_lock<std::shared_mutex> lock(latch_);
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::RecordId rid, heap_.Append(bytes));
  RowId row = rows_.size();
  rows_.push_back(rid);
  num_live_.fetch_add(1, std::memory_order_relaxed);
  for (auto& [column, index] : indexes_) {
    index.Insert(tuple.ValueAt(column), row);
  }
  return row;
}

Result<Tuple> Table::GetLocked(RowId row) const {
  if (row >= rows_.size() || !rows_[row].valid()) {
    return Status::NotFound("row " + std::to_string(row) + " not found in table '" +
                            name_ + "'");
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(std::string bytes, heap_.Get(rows_[row]));
  return Tuple::Deserialize(bytes);
}

Result<Tuple> Table::Get(RowId row) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  return GetLocked(row);
}

Status Table::Delete(RowId row) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  if (row >= rows_.size() || !rows_[row].valid()) {
    return Status::NotFound("row " + std::to_string(row) + " not found in table '" +
                            name_ + "'");
  }
  if (!indexes_.empty()) {
    // Fetch the keys before the heap record goes away.
    INSIGHTNOTES_ASSIGN_OR_RETURN(Tuple tuple, GetLocked(row));
    for (auto& [column, index] : indexes_) {
      INSIGHTNOTES_RETURN_IF_ERROR(index.Remove(tuple.ValueAt(column), row));
    }
  }
  INSIGHTNOTES_RETURN_IF_ERROR(heap_.Delete(rows_[row]));
  rows_[row] = storage::RecordId{};
  num_live_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

bool Table::IsLive(RowId row) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  return row < rows_.size() && rows_[row].valid();
}

Status Table::CreateIndex(size_t column) {
  if (column >= schema_.NumColumns()) {
    return Status::InvalidArgument("no column " + std::to_string(column) +
                                   " in table '" + name_ + "'");
  }
  std::unique_lock<std::shared_mutex> lock(latch_);
  TableIndex& index = indexes_[column];
  index = TableIndex{};  // Rebuild from scratch if it already existed.
  // Inline (unlatched) scan: the exclusive latch is already held.
  for (RowId row = 0; row < rows_.size(); ++row) {
    if (!rows_[row].valid()) continue;
    INSIGHTNOTES_ASSIGN_OR_RETURN(std::string bytes, heap_.Get(rows_[row]));
    INSIGHTNOTES_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes));
    index.Insert(tuple.ValueAt(column), row);
  }
  return Status::OK();
}

std::unique_ptr<BTree> Table::SwapIndex(size_t column,
                                        std::unique_ptr<BTree> tree) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  TableIndex& slot = indexes_[column];
  // Hand the previous tree (if any) back for page reclamation; an
  // in-memory backing just dies with `replaced`.
  TableIndex replaced = std::move(slot);
  slot = TableIndex(std::move(tree));
  return replaced.ReleaseTree();
}

std::vector<PersistentIndexInfo> Table::PersistentIndexes() const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  std::vector<PersistentIndexInfo> out;
  for (const auto& [column, index] : indexes_) {
    if (!index.persistent()) continue;
    out.push_back(PersistentIndexInfo{column, index.tree()->meta(),
                                      index.usable()});
  }
  return out;
}

Status Table::Scan(const std::function<bool(RowId, const Tuple&)>& fn) const {
  for (RowId row = 0; row < rows_.size(); ++row) {
    if (!rows_[row].valid()) continue;
    INSIGHTNOTES_ASSIGN_OR_RETURN(std::string bytes, heap_.Get(rows_[row]));
    INSIGHTNOTES_ASSIGN_OR_RETURN(Tuple tuple, Tuple::Deserialize(bytes));
    if (!fn(row, tuple)) return Status::OK();
  }
  return Status::OK();
}

}  // namespace insightnotes::rel
