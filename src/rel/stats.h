// Table statistics for the cost-based optimizer: per-column NDV, min/max,
// null counts and equi-depth histograms, plus annotation-density figures
// per linked summary instance. Collected by ANALYZE <table> (Engine::
// Analyze scans once), snapshotted immutably on the owning rel::Table, and
// serializable via ToText/FromText so callers can persist them alongside
// the catalog configuration. Row counts are read live from the table at
// estimation time; ANALYZE refreshes the distributions.

#ifndef INSIGHTNOTES_REL_STATS_H_
#define INSIGHTNOTES_REL_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/expression.h"
#include "rel/value.h"

namespace insightnotes::rel {

/// Distribution of one column at ANALYZE time. Selectivity estimates are
/// fractions of ALL rows (nulls included): a NULL cell never satisfies a
/// comparison predicate, so the non-null fraction scales every formula.
struct ColumnStats {
  uint64_t non_null_count = 0;
  uint64_t null_count = 0;
  uint64_t ndv = 0;                // Distinct non-null values.
  Value min;                       // NULL when the column had no values.
  Value max;
  /// Equi-depth histogram boundaries, ascending: bounds.front() == min,
  /// bounds.back() == max, and each of the bounds.size()-1 buckets
  /// (bounds[i], bounds[i+1]] holds ~non_null_count / (bounds.size()-1)
  /// values. Empty when the column had no non-null values.
  std::vector<Value> bounds;

  double NonNullFraction() const {
    uint64_t total = non_null_count + null_count;
    return total == 0 ? 0.0 : static_cast<double>(non_null_count) / total;
  }

  /// Estimated fraction of all rows with column == v (0 when v falls
  /// outside [min, max]; 1/ndv of the non-null mass otherwise).
  double EqSelectivity(const Value& v) const;

  /// Estimated fraction of all rows inside the (optionally half-open)
  /// range. Null bound pointers mean unbounded on that side.
  double RangeSelectivity(const Value* lo, bool lo_inclusive, const Value* hi,
                          bool hi_inclusive) const;

  /// Estimated fraction of *non-null* values strictly below v, from the
  /// histogram (linear interpolation inside numeric buckets).
  double FractionBelow(const Value& v) const;
};

/// Annotation density of one linked summary instance.
struct InstanceDensity {
  std::string instance;
  uint64_t annotated_rows = 0;      // Rows with >= 1 live annotation.
  uint64_t total_annotations = 0;   // Live (non-archived) attachments.
};

/// Immutable per-table snapshot. Built by BuildTableStats/Engine::Analyze;
/// hang it on the table with Table::SetStats.
struct TableStats {
  uint64_t row_count = 0;  // Live rows at ANALYZE time.
  std::vector<ColumnStats> columns;

  /// Exact per-row live-annotation-count distribution: (count, rows with
  /// that count) sorted ascending by count, covering all rows (count 0
  /// included). Drives SUMMARY_COUNT(...) selectivity.
  std::vector<std::pair<int64_t, uint64_t>> ann_count_freq;
  uint64_t annotated_rows = 0;
  uint64_t total_annotations = 0;
  std::vector<InstanceDensity> instances;

  /// Estimated fraction of rows whose annotation count satisfies
  /// `count <op> k` (SUMMARY_COUNT predicates). 0.5 without data.
  double AnnCountSelectivity(CompareOp op, int64_t k) const;

  /// Line-based serialization (values hex-encoded so arbitrary strings
  /// survive); FromText inverts it exactly.
  std::string ToText() const;
  static Result<TableStats> FromText(std::string_view text);
};

/// Builds the distribution of one column from its cell values (consumed).
/// `num_buckets` caps the equi-depth histogram resolution.
ColumnStats BuildColumnStats(std::vector<Value> values, size_t num_buckets = 32);

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_STATS_H_
