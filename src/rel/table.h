// Table: a schema-checked heap of tuples with stable RowIds. RowIds are the
// anchor annotations attach to (annotation store addresses cells as
// (table, row, column set)).

#ifndef INSIGHTNOTES_REL_TABLE_H_
#define INSIGHTNOTES_REL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/btree.h"
#include "rel/index.h"
#include "rel/schema.h"
#include "rel/stats.h"
#include "rel/tuple.h"
#include "storage/heap_file.h"

namespace insightnotes::rel {

using TableId = uint32_t;

/// One secondary-index slot of a table: either the historical in-memory
/// OrderedIndex (Table::CreateIndex, used by unit tests and engines without
/// an index file) or a persistent B+-tree attached by the engine
/// (Table::SwapIndex). Probes go through the wrapper so call sites don't
/// care which backing they hit.
///
/// Failure model: a persistent-backing maintenance failure (an I/O error
/// mid-split, say) marks the index *broken* — the row mutation itself still
/// succeeds, IndexOn() hides the index from the optimizer, and the
/// divergence heals on reopen (recovery adopts the last committed tree and
/// the caller's setup replay catches it up). The in-memory backing keeps
/// its historical strict behavior: Remove propagates NotFound.
class TableIndex {
 public:
  TableIndex() = default;  // In-memory backing.
  explicit TableIndex(std::unique_ptr<BTree> tree) : tree_(std::move(tree)) {}

  TableIndex(TableIndex&&) = default;
  TableIndex& operator=(TableIndex&&) = default;

  bool persistent() const { return tree_ != nullptr; }
  /// False after a maintenance failure; broken indexes refuse probes and
  /// IndexOn() hides them.
  bool usable() const { return broken_.ok(); }
  const Status& broken_status() const { return broken_; }
  BTree* tree() { return tree_.get(); }
  const BTree* tree() const { return tree_.get(); }
  std::unique_ptr<BTree> ReleaseTree() { return std::move(tree_); }

  /// Row maintenance (exclusive table latch held by the caller). A
  /// persistent-backing failure marks the index broken instead of failing
  /// the row mutation.
  void Insert(const Value& key, RowId row);
  Status Remove(const Value& key, RowId row);

  /// Probe paths (shared table latch held by the caller). Failed probes on
  /// a persistent backing surface the I/O error; broken indexes are
  /// unreachable through IndexOn().
  Status LookupInto(const Value& key, std::vector<RowId>* out) const;
  Status RangeInto(const Value* lo, const Value* hi,
                   std::vector<RowId>* out) const;

  size_t NumEntries() const {
    return tree_ != nullptr ? static_cast<size_t>(tree_->NumEntries())
                            : mem_.NumEntries();
  }

 private:
  OrderedIndex mem_;
  std::unique_ptr<BTree> tree_;
  Status broken_;
};

/// Persistent-index state the engine snapshots per index checkpoint.
struct PersistentIndexInfo {
  size_t column = 0;
  BTreeMeta meta;
  bool usable = true;
};

/// Thread-safety: a per-table shared_mutex guards the row directory and the
/// indexes — Insert/Delete/CreateIndex exclusive, Get/IsLive/RowBound
/// shared. Scan is NOT latched (it is a writer-side primitive: CreateIndex
/// runs it while holding the exclusive latch, ANALYZE and single-session
/// fallbacks run it with no concurrent writer); epoch-pinned readers
/// iterate [0, snapshot bound) with per-row latched Get/IsLive instead.
class Table {
 public:
  /// `pool` must outlive the table.
  Table(TableId id, std::string name, Schema schema, storage::BufferPool* pool)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)), heap_(pool) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts a tuple after checking arity and types (NULL fits any column).
  Result<RowId> Insert(const Tuple& tuple);

  /// Fetches the tuple at `row`.
  Result<Tuple> Get(RowId row) const;

  /// Deletes the tuple at `row` (RowIds are never reused).
  Status Delete(RowId row);

  /// True if `row` identifies a live tuple.
  bool IsLive(RowId row) const;

  /// Calls `fn(row, tuple)` for every live tuple in insertion order;
  /// stops early when `fn` returns false.
  Status Scan(const std::function<bool(RowId, const Tuple&)>& fn) const;

  uint64_t NumRows() const { return num_live_.load(std::memory_order_relaxed); }

  /// One past the highest RowId ever allocated (deleted rows included).
  /// The engine captures this per publish as the epoch's visible-row bound.
  RowId RowBound() const {
    std::shared_lock<std::shared_mutex> lock(latch_);
    return rows_.size();
  }

  /// Shared latch for callers doing multi-step reads (e.g. an index probe
  /// followed by row lookups) that must not interleave with Insert/Delete.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(latch_);
  }

  /// Builds (or rebuilds) an in-memory ordered secondary index over
  /// `column`, scanning the existing rows; Insert/Delete maintain it
  /// afterwards. The engine's CREATE INDEX path instead builds a persistent
  /// B+-tree and attaches it with SwapIndex.
  Status CreateIndex(size_t column);

  /// Replaces the index slot on `column` with a persistent B+-tree built by
  /// the engine, returning the previous backing tree (null if the slot was
  /// empty or in-memory) so the caller can discard its pages. Takes the
  /// exclusive latch.
  std::unique_ptr<BTree> SwapIndex(size_t column, std::unique_ptr<BTree> tree);

  /// Snapshot of every persistent index on this table, for the engine's
  /// index checkpoint record.
  std::vector<PersistentIndexInfo> PersistentIndexes() const;

  /// The usable index on `column`, or null if none was created (or it is
  /// broken). The pointer stays valid for the table's lifetime (indexes are
  /// never dropped). Concurrent readers must hold ReadLock() across the
  /// probe (CreateIndex/SwapIndex rebuild index contents under the
  /// exclusive latch).
  const TableIndex* IndexOn(size_t column) const {
    auto it = indexes_.find(column);
    if (it == indexes_.end() || !it->second.usable()) return nullptr;
    return &it->second;
  }

  /// Immutable optimizer-statistics snapshot (null until ANALYZE ran).
  /// Thread-safe: readers get a consistent shared_ptr while ANALYZE swaps
  /// in a fresh snapshot.
  std::shared_ptr<const TableStats> stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }
  void SetStats(std::shared_ptr<const TableStats> stats) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = std::move(stats);
  }

 private:
  Status CheckTuple(const Tuple& tuple) const;

  /// Get without taking the latch (Delete holds it exclusively already).
  Result<Tuple> GetLocked(RowId row) const;

  TableId id_;
  std::string name_;
  Schema schema_;
  storage::HeapFile heap_;
  // Guards rows_ and indexes_. Lock order: table latch → heap latch.
  mutable std::shared_mutex latch_;
  // row id -> heap record; invalid RecordId marks a deleted row.
  std::vector<storage::RecordId> rows_;
  std::atomic<uint64_t> num_live_{0};
  // Secondary indexes by column position. std::map keeps IndexOn pointers
  // stable across CreateIndex calls on other columns.
  std::map<size_t, TableIndex> indexes_;
  mutable std::mutex stats_mutex_;
  std::shared_ptr<const TableStats> stats_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_TABLE_H_
