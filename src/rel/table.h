// Table: a schema-checked heap of tuples with stable RowIds. RowIds are the
// anchor annotations attach to (annotation store addresses cells as
// (table, row, column set)).

#ifndef INSIGHTNOTES_REL_TABLE_H_
#define INSIGHTNOTES_REL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/index.h"
#include "rel/schema.h"
#include "rel/stats.h"
#include "rel/tuple.h"
#include "storage/heap_file.h"

namespace insightnotes::rel {

using TableId = uint32_t;

/// Thread-safety: a per-table shared_mutex guards the row directory and the
/// indexes — Insert/Delete/CreateIndex exclusive, Get/IsLive/RowBound
/// shared. Scan is NOT latched (it is a writer-side primitive: CreateIndex
/// runs it while holding the exclusive latch, ANALYZE and single-session
/// fallbacks run it with no concurrent writer); epoch-pinned readers
/// iterate [0, snapshot bound) with per-row latched Get/IsLive instead.
class Table {
 public:
  /// `pool` must outlive the table.
  Table(TableId id, std::string name, Schema schema, storage::BufferPool* pool)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)), heap_(pool) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts a tuple after checking arity and types (NULL fits any column).
  Result<RowId> Insert(const Tuple& tuple);

  /// Fetches the tuple at `row`.
  Result<Tuple> Get(RowId row) const;

  /// Deletes the tuple at `row` (RowIds are never reused).
  Status Delete(RowId row);

  /// True if `row` identifies a live tuple.
  bool IsLive(RowId row) const;

  /// Calls `fn(row, tuple)` for every live tuple in insertion order;
  /// stops early when `fn` returns false.
  Status Scan(const std::function<bool(RowId, const Tuple&)>& fn) const;

  uint64_t NumRows() const { return num_live_.load(std::memory_order_relaxed); }

  /// One past the highest RowId ever allocated (deleted rows included).
  /// The engine captures this per publish as the epoch's visible-row bound.
  RowId RowBound() const {
    std::shared_lock<std::shared_mutex> lock(latch_);
    return rows_.size();
  }

  /// Shared latch for callers doing multi-step reads (e.g. an index probe
  /// followed by row lookups) that must not interleave with Insert/Delete.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(latch_);
  }

  /// Builds (or rebuilds) an ordered secondary index over `column`,
  /// scanning the existing rows; Insert/Delete maintain it afterwards.
  Status CreateIndex(size_t column);

  /// The index on `column`, or null if none was created. The pointer stays
  /// valid for the table's lifetime (indexes are never dropped). Concurrent
  /// readers must hold ReadLock() across the probe (CreateIndex rebuilds
  /// index contents in place under the exclusive latch).
  const OrderedIndex* IndexOn(size_t column) const {
    auto it = indexes_.find(column);
    return it == indexes_.end() ? nullptr : &it->second;
  }

  /// Immutable optimizer-statistics snapshot (null until ANALYZE ran).
  /// Thread-safe: readers get a consistent shared_ptr while ANALYZE swaps
  /// in a fresh snapshot.
  std::shared_ptr<const TableStats> stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }
  void SetStats(std::shared_ptr<const TableStats> stats) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = std::move(stats);
  }

 private:
  Status CheckTuple(const Tuple& tuple) const;

  /// Get without taking the latch (Delete holds it exclusively already).
  Result<Tuple> GetLocked(RowId row) const;

  TableId id_;
  std::string name_;
  Schema schema_;
  storage::HeapFile heap_;
  // Guards rows_ and indexes_. Lock order: table latch → heap latch.
  mutable std::shared_mutex latch_;
  // row id -> heap record; invalid RecordId marks a deleted row.
  std::vector<storage::RecordId> rows_;
  std::atomic<uint64_t> num_live_{0};
  // Secondary indexes by column position. std::map keeps IndexOn pointers
  // stable across CreateIndex calls on other columns.
  std::map<size_t, OrderedIndex> indexes_;
  mutable std::mutex stats_mutex_;
  std::shared_ptr<const TableStats> stats_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_TABLE_H_
