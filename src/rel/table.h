// Table: a schema-checked heap of tuples with stable RowIds. RowIds are the
// anchor annotations attach to (annotation store addresses cells as
// (table, row, column set)).

#ifndef INSIGHTNOTES_REL_TABLE_H_
#define INSIGHTNOTES_REL_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/index.h"
#include "rel/schema.h"
#include "rel/stats.h"
#include "rel/tuple.h"
#include "storage/heap_file.h"

namespace insightnotes::rel {

using TableId = uint32_t;

class Table {
 public:
  /// `pool` must outlive the table.
  Table(TableId id, std::string name, Schema schema, storage::BufferPool* pool)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)), heap_(pool) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts a tuple after checking arity and types (NULL fits any column).
  Result<RowId> Insert(const Tuple& tuple);

  /// Fetches the tuple at `row`.
  Result<Tuple> Get(RowId row) const;

  /// Deletes the tuple at `row` (RowIds are never reused).
  Status Delete(RowId row);

  /// True if `row` identifies a live tuple.
  bool IsLive(RowId row) const;

  /// Calls `fn(row, tuple)` for every live tuple in insertion order;
  /// stops early when `fn` returns false.
  Status Scan(const std::function<bool(RowId, const Tuple&)>& fn) const;

  uint64_t NumRows() const { return num_live_; }

  /// Builds (or rebuilds) an ordered secondary index over `column`,
  /// scanning the existing rows; Insert/Delete maintain it afterwards.
  Status CreateIndex(size_t column);

  /// The index on `column`, or null if none was created. The pointer stays
  /// valid for the table's lifetime (indexes are never dropped).
  const OrderedIndex* IndexOn(size_t column) const {
    auto it = indexes_.find(column);
    return it == indexes_.end() ? nullptr : &it->second;
  }

  /// Immutable optimizer-statistics snapshot (null until ANALYZE ran).
  /// Thread-safe: readers get a consistent shared_ptr while ANALYZE swaps
  /// in a fresh snapshot.
  std::shared_ptr<const TableStats> stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }
  void SetStats(std::shared_ptr<const TableStats> stats) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = std::move(stats);
  }

 private:
  Status CheckTuple(const Tuple& tuple) const;

  TableId id_;
  std::string name_;
  Schema schema_;
  storage::HeapFile heap_;
  // row id -> heap record; invalid RecordId marks a deleted row.
  std::vector<storage::RecordId> rows_;
  uint64_t num_live_ = 0;
  // Secondary indexes by column position. std::map keeps IndexOn pointers
  // stable across CreateIndex calls on other columns.
  std::map<size_t, OrderedIndex> indexes_;
  mutable std::mutex stats_mutex_;
  std::shared_ptr<const TableStats> stats_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_TABLE_H_
