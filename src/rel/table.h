// Table: a schema-checked heap of tuples with stable RowIds. RowIds are the
// anchor annotations attach to (annotation store addresses cells as
// (table, row, column set)).

#ifndef INSIGHTNOTES_REL_TABLE_H_
#define INSIGHTNOTES_REL_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/schema.h"
#include "rel/tuple.h"
#include "storage/heap_file.h"

namespace insightnotes::rel {

using TableId = uint32_t;

class Table {
 public:
  /// `pool` must outlive the table.
  Table(TableId id, std::string name, Schema schema, storage::BufferPool* pool)
      : id_(id), name_(std::move(name)), schema_(std::move(schema)), heap_(pool) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Inserts a tuple after checking arity and types (NULL fits any column).
  Result<RowId> Insert(const Tuple& tuple);

  /// Fetches the tuple at `row`.
  Result<Tuple> Get(RowId row) const;

  /// Deletes the tuple at `row` (RowIds are never reused).
  Status Delete(RowId row);

  /// True if `row` identifies a live tuple.
  bool IsLive(RowId row) const;

  /// Calls `fn(row, tuple)` for every live tuple in insertion order;
  /// stops early when `fn` returns false.
  Status Scan(const std::function<bool(RowId, const Tuple&)>& fn) const;

  uint64_t NumRows() const { return num_live_; }

 private:
  Status CheckTuple(const Tuple& tuple) const;

  TableId id_;
  std::string name_;
  Schema schema_;
  storage::HeapFile heap_;
  // row id -> heap record; invalid RecordId marks a deleted row.
  std::vector<storage::RecordId> rows_;
  uint64_t num_live_ = 0;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_TABLE_H_
