// Schema: ordered, possibly table-qualified column descriptors. Operators
// derive output schemas from input schemas (joins concatenate, projections
// subset).

#ifndef INSIGHTNOTES_REL_SCHEMA_H_
#define INSIGHTNOTES_REL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/value.h"

namespace insightnotes::rel {

struct Column {
  std::string name;        // Bare column name, e.g. "a".
  ValueType type = ValueType::kNull;
  std::string qualifier;   // Table name or alias, may be empty.

  /// "r.a" or "a".
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& ColumnAt(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Resolves "a" or "r.a". Unqualified names must be unambiguous across
  /// qualifiers; ambiguity and misses are errors.
  Result<size_t> IndexOf(std::string_view name) const;

  /// True if `name` resolves to exactly one column.
  bool Contains(std::string_view name) const { return IndexOf(name).ok(); }

  /// New schema with every column's qualifier replaced by `qualifier`.
  Schema WithQualifier(std::string_view qualifier) const;

  /// Concatenation for joins (column order: this, then right).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(r.a BIGINT, r.b TEXT)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_SCHEMA_H_
