#include "rel/btree.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace insightnotes::rel {

namespace {

using storage::kInvalidPageId;
using storage::kPageDataOffset;
using storage::kPageSize;
using storage::PageGuard;
using storage::PageId;

constexpr uint32_t kMaxHeight = 32;  // Corruption guard for descents.

size_t MinEntries(size_t max_entries) { return max_entries / 2; }

/// Largest slot whose separator is <= key (0 when key sorts below every
/// separator — the caller lowers separator 0 on the write path).
size_t RouteSlot(const BTreeNodeView& v, const BTreeKey& key) {
  size_t lo = 0, hi = v.count();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (v.key_at(mid).Compare(key) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First slot whose key is >= key (== count when all are smaller).
size_t LeafLowerBound(const BTreeNodeView& v, const BTreeKey& key) {
  size_t lo = 0, hi = v.count();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (v.key_at(mid).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<BTreeKey> ReadLeafEntries(const BTreeNodeView& v) {
  std::vector<BTreeKey> keys;
  keys.reserve(v.count());
  for (size_t i = 0; i < v.count(); ++i) keys.push_back(v.key_at(i));
  return keys;
}

void WriteLeafEntries(BTreeNodeView* v, const std::vector<BTreeKey>& keys,
                      size_t from, size_t to) {
  for (size_t i = from; i < to; ++i) v->WriteLeafEntry(i - from, keys[i]);
  v->set_count(static_cast<uint16_t>(to - from));
}

struct InternalEntry {
  BTreeKey key;
  PageId child;
};

std::vector<InternalEntry> ReadInternalEntries(const BTreeNodeView& v) {
  std::vector<InternalEntry> entries;
  entries.reserve(v.count());
  for (size_t i = 0; i < v.count(); ++i) {
    entries.push_back({v.key_at(i), v.child_at(i)});
  }
  return entries;
}

void WriteInternalEntries(BTreeNodeView* v,
                          const std::vector<InternalEntry>& entries,
                          size_t from, size_t to) {
  for (size_t i = from; i < to; ++i) {
    v->WriteInternalEntry(i - from, entries[i].key, entries[i].child);
  }
  v->set_count(static_cast<uint16_t>(to - from));
}

BTreeNodeView ViewOf(PageGuard* guard) {
  return BTreeNodeView(guard->MutableData());
}

BTreeNodeView ConstViewOf(const PageGuard& guard) {
  // Read-only use of the view; const_cast avoids marking the frame dirty.
  return BTreeNodeView(const_cast<char*>(guard.data()));
}

}  // namespace

// ---------------------------------------------------------------------------
// BTreeStore

BTreeStore::BTreeStore(storage::BufferPool* pool, BTreeStoreMeta meta,
                       size_t max_node_entries)
    : pool_(pool),
      page_count_(meta.page_count),
      next_stamp_(meta.next_stamp < 1 ? 1 : meta.next_stamp) {
  size_t leaf_cap = kBTreeLeafCapacity;
  size_t internal_cap = kBTreeInternalCapacity;
  if (max_node_entries >= 4) {
    leaf_cap = std::min(leaf_cap, max_node_entries);
    internal_cap = std::min(internal_cap, max_node_entries);
  }
  max_leaf_entries_ = leaf_cap;
  max_internal_entries_ = internal_cap;
  for (PageId id : meta.free_pages) {
    if (id < page_count_ && free_lookup_.insert(id).second) {
      free_.push_back(id);
    }
  }
}

Result<storage::PageGuard> BTreeStore::Allocate(uint64_t* stamp_out) {
  PageId reuse = kInvalidPageId;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      reuse = free_.back();
      free_.pop_back();
      free_lookup_.erase(reuse);
    }
  }
  Result<PageGuard> guard = reuse != kInvalidPageId ? pool_->InitPage(reuse)
                                                    : pool_->NewPage();
  if (!guard.ok()) {
    if (reuse != kInvalidPageId) {
      std::lock_guard<std::mutex> lock(mutex_);
      free_.push_back(reuse);
      free_lookup_.insert(reuse);
    }
    return guard.status();
  }
  uint64_t stamp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (reuse == kInvalidPageId) {
      page_count_ = std::max<uint64_t>(page_count_, guard->page_id() + 1);
    }
    stamp = next_stamp_++;
    fresh_.insert(guard->page_id());
  }
  BTreeNodeView(guard->MutableData()).set_stamp(stamp);
  *stamp_out = stamp;
  return guard;
}

void BTreeStore::Free(storage::PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_lookup_.insert(id).second) return;  // Already free.
  if (fresh_.erase(id) > 0) {
    free_.push_back(id);  // Never committed: reusable immediately.
  } else {
    freed_pending_.push_back(id);  // The last checkpoint may reference it.
  }
}

bool BTreeStore::IsFresh(storage::PageId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fresh_.count(id) > 0;
}

bool BTreeStore::IsFreeOrPending(storage::PageId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_lookup_.count(id) > 0;
}

BTreeStoreMeta BTreeStore::CommitMeta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BTreeStoreMeta meta;
  meta.page_count = page_count_;
  meta.next_stamp = next_stamp_;
  meta.free_pages.reserve(free_.size() + freed_pending_.size());
  meta.free_pages.insert(meta.free_pages.end(), free_.begin(), free_.end());
  meta.free_pages.insert(meta.free_pages.end(), freed_pending_.begin(),
                         freed_pending_.end());
  return meta;
}

void BTreeStore::CommitEpoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.insert(free_.end(), freed_pending_.begin(), freed_pending_.end());
  freed_pending_.clear();
  fresh_.clear();
}

// ---------------------------------------------------------------------------
// BTree

BTree::BTree(BTreeStore* store, const BTreeMeta& meta)
    : store_(store),
      pool_(store->pool()),
      root_(meta.root),
      height_(meta.height),
      entries_(meta.entries),
      covered_rows_(meta.covered_rows) {}

Result<std::unique_ptr<BTree>> BTree::Create(BTreeStore* store) {
  uint64_t stamp;
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard root, store->Allocate(&stamp));
  BTreeNodeView v(root.MutableData());
  v.set_kind(kBTreeLeafKind);
  v.set_count(0);
  v.set_next(kInvalidPageId, 0);
  BTreeMeta meta;
  meta.root = root.page_id();
  return std::unique_ptr<BTree>(new BTree(store, meta));
}

std::unique_ptr<BTree> BTree::Attach(BTreeStore* store, const BTreeMeta& meta) {
  return std::unique_ptr<BTree>(new BTree(store, meta));
}

Result<storage::PageId> BTree::Shadow(storage::PageId id,
                                      storage::PageGuard* guard) {
  if (store_->IsFresh(id)) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(*guard, pool_->FetchPage(id));
    return id;
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard old, pool_->FetchPage(id));
  uint64_t stamp;
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard fresh, store_->Allocate(&stamp));
  std::memcpy(fresh.MutableData() + kPageDataOffset,
              old.data() + kPageDataOffset, kPageSize - kPageDataOffset);
  BTreeNodeView(fresh.MutableData()).set_stamp(stamp);
  store_->Free(id);
  PageId fresh_id = fresh.page_id();
  *guard = std::move(fresh);
  return fresh_id;
}

Status BTree::DescendForWrite(const BTreeKey& key,
                              std::vector<PathEntry>* path,
                              storage::PageGuard* leaf) {
  if (root_ == kInvalidPageId) {
    return Status::Internal("btree: use after Discard()");
  }
  PageGuard g;
  INSIGHTNOTES_ASSIGN_OR_RETURN(root_, Shadow(root_, &g));
  for (uint32_t level = 0; level < height_; ++level) {
    BTreeNodeView v = ViewOf(&g);
    if (v.kind() != kBTreeInternalKind || v.count() == 0) {
      return Status::Corruption("btree: malformed internal node");
    }
    // Keep separator 0 a lower bound for keys below the current minimum.
    if (key.Compare(v.key_at(0)) < 0) v.SetInternalKey(0, key);
    size_t slot = RouteSlot(v, key);
    PageId child = v.child_at(slot);
    PageGuard cg;
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageId shadowed, Shadow(child, &cg));
    if (shadowed != child) v.SetChild(slot, shadowed);
    path->push_back({g.page_id(), static_cast<uint16_t>(slot)});
    g = std::move(cg);
  }
  if (ConstViewOf(g).kind() != kBTreeLeafKind) {
    return Status::Corruption("btree: descent did not reach a leaf");
  }
  *leaf = std::move(g);
  return Status::OK();
}

Status BTree::InsertKey(const BTreeKey& key) {
  std::vector<PathEntry> path;
  PageGuard leaf;
  INSIGHTNOTES_RETURN_IF_ERROR(DescendForWrite(key, &path, &leaf));
  BTreeNodeView lv = ViewOf(&leaf);
  std::vector<BTreeKey> keys = ReadLeafEntries(lv);
  auto pos = std::lower_bound(keys.begin(), keys.end(), key);
  if (pos != keys.end() && *pos == key) return Status::OK();  // Idempotent.
  keys.insert(pos, key);
  ++entries_;
  if (keys.size() <= store_->max_leaf_entries()) {
    WriteLeafEntries(&lv, keys, 0, keys.size());
    return Status::OK();
  }

  // Leaf overflow: split evenly, link the right half into the leaf chain.
  size_t left_n = (keys.size() + 1) / 2;
  uint64_t right_stamp;
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard right, store_->Allocate(&right_stamp));
  BTreeNodeView rv = ViewOf(&right);
  rv.set_kind(kBTreeLeafKind);
  rv.set_next(lv.next_page(), lv.next_stamp());
  WriteLeafEntries(&rv, keys, left_n, keys.size());
  WriteLeafEntries(&lv, keys, 0, left_n);
  lv.set_next(right.page_id(), right_stamp);
  BTreeKey sep = keys[left_n];
  PageId new_child = right.page_id();
  right.Release();
  leaf.Release();

  // Bubble the new separator up the recorded path, splitting as needed.
  for (size_t i = path.size(); i-- > 0;) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard parent,
                                  pool_->FetchPage(path[i].id));
    BTreeNodeView pv = ViewOf(&parent);
    std::vector<InternalEntry> entries = ReadInternalEntries(pv);
    entries.insert(entries.begin() + path[i].slot + 1, {sep, new_child});
    if (entries.size() <= store_->max_internal_entries()) {
      WriteInternalEntries(&pv, entries, 0, entries.size());
      return Status::OK();
    }
    size_t split = (entries.size() + 1) / 2;
    uint64_t stamp;
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard rnode, store_->Allocate(&stamp));
    BTreeNodeView rnv = ViewOf(&rnode);
    rnv.set_kind(kBTreeInternalKind);
    rnv.set_next(kInvalidPageId, 0);
    WriteInternalEntries(&rnv, entries, split, entries.size());
    WriteInternalEntries(&pv, entries, 0, split);
    sep = entries[split].key;
    new_child = rnode.page_id();
  }

  // The root itself split: grow a new root above both halves. The left
  // entry's separator is the all-zero composite — a valid lower bound for
  // everything, so no child read is needed.
  uint64_t stamp;
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard new_root, store_->Allocate(&stamp));
  BTreeNodeView nv = ViewOf(&new_root);
  nv.set_kind(kBTreeInternalKind);
  nv.set_next(kInvalidPageId, 0);
  nv.WriteInternalEntry(0, BTreeKey{}, root_);
  nv.WriteInternalEntry(1, sep, new_child);
  nv.set_count(2);
  root_ = new_root.page_id();
  ++height_;
  if (height_ > kMaxHeight) return Status::Corruption("btree: height runaway");
  return Status::OK();
}

Status BTree::RemoveKey(const BTreeKey& key, bool* found) {
  *found = false;
  std::vector<PathEntry> path;
  PageGuard leaf;
  INSIGHTNOTES_RETURN_IF_ERROR(DescendForWrite(key, &path, &leaf));
  BTreeNodeView lv = ViewOf(&leaf);
  std::vector<BTreeKey> keys = ReadLeafEntries(lv);
  auto pos = std::lower_bound(keys.begin(), keys.end(), key);
  if (pos == keys.end() || !(*pos == key)) return Status::OK();
  keys.erase(pos);
  WriteLeafEntries(&lv, keys, 0, keys.size());
  *found = true;
  --entries_;
  PageId node_id = leaf.page_id();
  leaf.Release();

  // Rebalance upward from the leaf: each merge removes one parent entry
  // and may underflow the parent in turn.
  size_t depth = path.size();
  while (depth > 0) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard node, pool_->FetchPage(node_id));
    BTreeNodeView nv = ViewOf(&node);
    bool leaf_level = nv.is_leaf();
    size_t max_entries = leaf_level ? store_->max_leaf_entries()
                                    : store_->max_internal_entries();
    if (nv.count() >= MinEntries(max_entries)) break;

    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard parent,
                                  pool_->FetchPage(path[depth - 1].id));
    BTreeNodeView pv = ViewOf(&parent);
    size_t slot = path[depth - 1].slot;
    bool merged = false;
    if (slot + 1 < pv.count()) {
      // Work with the right sibling.
      PageId rid = pv.child_at(slot + 1);
      INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard rpeek, pool_->FetchPage(rid));
      size_t rcount = ConstViewOf(rpeek).count();
      if (nv.count() + rcount <= max_entries) {
        // Merge right sibling into `node`; the right page dies unmodified.
        BTreeNodeView rv = ConstViewOf(rpeek);
        if (leaf_level) {
          std::vector<BTreeKey> merged_keys = ReadLeafEntries(nv);
          std::vector<BTreeKey> right_keys = ReadLeafEntries(rv);
          merged_keys.insert(merged_keys.end(), right_keys.begin(),
                             right_keys.end());
          WriteLeafEntries(&nv, merged_keys, 0, merged_keys.size());
          nv.set_next(rv.next_page(), rv.next_stamp());
        } else {
          std::vector<InternalEntry> merged_entries = ReadInternalEntries(nv);
          std::vector<InternalEntry> right_entries = ReadInternalEntries(rv);
          merged_entries.insert(merged_entries.end(), right_entries.begin(),
                                right_entries.end());
          WriteInternalEntries(&nv, merged_entries, 0, merged_entries.size());
        }
        rpeek.Release();
        store_->Free(rid);
        std::vector<InternalEntry> pentries = ReadInternalEntries(pv);
        pentries.erase(pentries.begin() + slot + 1);
        WriteInternalEntries(&pv, pentries, 0, pentries.size());
        merged = true;
      } else {
        // Borrow from the right sibling (shadowed: it changes).
        rpeek.Release();
        PageGuard rg;
        INSIGHTNOTES_ASSIGN_OR_RETURN(PageId rid2, Shadow(rid, &rg));
        if (rid2 != rid) pv.SetChild(slot + 1, rid2);
        BTreeNodeView rv = ViewOf(&rg);
        if (leaf_level) {
          std::vector<BTreeKey> all = ReadLeafEntries(nv);
          std::vector<BTreeKey> right_keys = ReadLeafEntries(rv);
          all.insert(all.end(), right_keys.begin(), right_keys.end());
          size_t left_n = (all.size() + 1) / 2;
          WriteLeafEntries(&nv, all, 0, left_n);
          WriteLeafEntries(&rv, all, left_n, all.size());
          nv.set_next(rid2, rv.stamp());
          pv.SetInternalKey(slot + 1, all[left_n]);
        } else {
          std::vector<InternalEntry> all = ReadInternalEntries(nv);
          std::vector<InternalEntry> right_entries = ReadInternalEntries(rv);
          all.insert(all.end(), right_entries.begin(), right_entries.end());
          size_t left_n = (all.size() + 1) / 2;
          WriteInternalEntries(&nv, all, 0, left_n);
          WriteInternalEntries(&rv, all, left_n, all.size());
          pv.SetInternalKey(slot + 1, all[left_n].key);
        }
      }
    } else if (slot > 0) {
      // Work with the left sibling (always shadowed: it changes or absorbs).
      PageId lid = pv.child_at(slot - 1);
      PageGuard lg_peek;
      INSIGHTNOTES_ASSIGN_OR_RETURN(lg_peek, pool_->FetchPage(lid));
      size_t lcount = ConstViewOf(lg_peek).count();
      lg_peek.Release();
      PageGuard lg;
      INSIGHTNOTES_ASSIGN_OR_RETURN(PageId lid2, Shadow(lid, &lg));
      if (lid2 != lid) pv.SetChild(slot - 1, lid2);
      BTreeNodeView lv2 = ViewOf(&lg);
      if (lcount + nv.count() <= max_entries) {
        // Merge `node` into the left sibling; `node` dies (it is fresh).
        if (leaf_level) {
          std::vector<BTreeKey> all = ReadLeafEntries(lv2);
          std::vector<BTreeKey> cur_keys = ReadLeafEntries(nv);
          all.insert(all.end(), cur_keys.begin(), cur_keys.end());
          WriteLeafEntries(&lv2, all, 0, all.size());
          lv2.set_next(nv.next_page(), nv.next_stamp());
        } else {
          std::vector<InternalEntry> all = ReadInternalEntries(lv2);
          std::vector<InternalEntry> cur_entries = ReadInternalEntries(nv);
          all.insert(all.end(), cur_entries.begin(), cur_entries.end());
          WriteInternalEntries(&lv2, all, 0, all.size());
        }
        node.Release();
        store_->Free(node_id);
        std::vector<InternalEntry> pentries = ReadInternalEntries(pv);
        pentries.erase(pentries.begin() + slot);
        WriteInternalEntries(&pv, pentries, 0, pentries.size());
        merged = true;
      } else {
        // Borrow from the left sibling.
        if (leaf_level) {
          std::vector<BTreeKey> all = ReadLeafEntries(lv2);
          std::vector<BTreeKey> cur_keys = ReadLeafEntries(nv);
          all.insert(all.end(), cur_keys.begin(), cur_keys.end());
          size_t left_n = (all.size() + 1) / 2;
          WriteLeafEntries(&lv2, all, 0, left_n);
          WriteLeafEntries(&nv, all, left_n, all.size());
          lv2.set_next(node_id, nv.stamp());
          pv.SetInternalKey(slot, all[left_n]);
        } else {
          std::vector<InternalEntry> all = ReadInternalEntries(lv2);
          std::vector<InternalEntry> cur_entries = ReadInternalEntries(nv);
          all.insert(all.end(), cur_entries.begin(), cur_entries.end());
          size_t left_n = (all.size() + 1) / 2;
          WriteInternalEntries(&lv2, all, 0, left_n);
          WriteInternalEntries(&nv, all, left_n, all.size());
          pv.SetInternalKey(slot, all[left_n].key);
        }
      }
    } else {
      // Only child: the parent has a single entry; collapse happens below.
      break;
    }
    if (!merged) break;
    --depth;
    node_id = path[depth].id;
  }

  // Collapse single-child internal roots.
  while (height_ > 0) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard rootg, pool_->FetchPage(root_));
    BTreeNodeView rv = ConstViewOf(rootg);
    if (rv.kind() != kBTreeInternalKind || rv.count() != 1) break;
    PageId child = rv.child_at(0);
    rootg.Release();
    store_->Free(root_);
    root_ = child;
    --height_;
  }
  return Status::OK();
}

Status BTree::InsertForRow(const Value& value, RowId row) {
  if (row < covered_rows_) return Status::OK();
  return InsertKey(EncodeBTreeKey(value, row));
}

Status BTree::RemoveForRow(const Value& value, RowId row) {
  bool found = false;
  INSIGHTNOTES_RETURN_IF_ERROR(RemoveKey(EncodeBTreeKey(value, row), &found));
  if (!found && row >= covered_rows_) {
    return Status::NotFound("btree: no index entry for row");
  }
  return Status::OK();
}

Result<storage::PageGuard> BTree::SeekLeaf(const BTreeKey& key) const {
  if (root_ == kInvalidPageId) {
    return Status::Internal("btree: use after Discard()");
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(root_));
  for (uint32_t level = 0; level < height_; ++level) {
    BTreeNodeView v = ConstViewOf(g);
    if (v.kind() != kBTreeInternalKind || v.count() == 0) {
      return Status::Corruption("btree: malformed internal node");
    }
    PageId child = v.child_at(RouteSlot(v, key));
    INSIGHTNOTES_ASSIGN_OR_RETURN(g, pool_->FetchPage(child));
  }
  if (ConstViewOf(g).kind() != kBTreeLeafKind) {
    return Status::Corruption("btree: descent did not reach a leaf");
  }
  return g;
}

Status BTree::ScanRange(const BTreeKey& first, const unsigned char* hi_value,
                        std::vector<RowId>* out) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard g, SeekLeaf(first));
  BTreeKey cursor = first;
  // Bounded by one transition per leaf plus reseeks, each of which lands
  // strictly further right; the cap only guards against corrupted chains.
  for (uint64_t iter = 0; iter <= entries_ + 2 * (entries_ + 2); ++iter) {
    BTreeNodeView v = ConstViewOf(g);
    size_t pos = LeafLowerBound(v, cursor);
    size_t count = v.count();
    bool consumed = false;
    for (; pos < count; ++pos) {
      BTreeKey k = v.key_at(pos);
      if (hi_value != nullptr &&
          std::memcmp(k.bytes.data(), hi_value, kBTreeValueKeyBytes) > 0) {
        return Status::OK();
      }
      out->push_back(k.row());
      cursor = k;
      consumed = true;
    }
    if (consumed) cursor = cursor.Successor();

    // Advance to the next leaf: validated sibling hint first, root descent
    // as the fallback (copy-on-write may have moved the neighbour).
    PageId next = v.next_page();
    uint64_t next_stamp = v.next_stamp();
    bool advanced = false;
    if (next == kInvalidPageId) return Status::OK();  // Rightmost leaf.
    if (!store_->IsFreeOrPending(next)) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard candidate,
                                    pool_->FetchPage(next));
      BTreeNodeView cv = ConstViewOf(candidate);
      if (cv.kind() == kBTreeLeafKind && cv.stamp() == next_stamp) {
        g = std::move(candidate);
        advanced = true;
      }
    }
    if (!advanced) {
      // Stale hint: reseek the leaf covering the cursor. If that leaf is
      // the one just drained (every entry below the cursor), step right
      // through the freshly-built parent stack.
      bool done = false;
      INSIGHTNOTES_RETURN_IF_ERROR(ReseekScan(cursor, &g, &done));
      if (done) return Status::OK();
    }
  }
  return Status::Corruption("btree: leaf chain does not terminate");
}

Status BTree::ReseekScan(const BTreeKey& cursor, storage::PageGuard* out,
                         bool* done) const {
  struct Level {
    PageId id;
    size_t slot;
  };
  std::vector<Level> stack;
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(root_));
  for (uint32_t level = 0; level < height_; ++level) {
    BTreeNodeView v = ConstViewOf(g);
    if (v.kind() != kBTreeInternalKind || v.count() == 0) {
      return Status::Corruption("btree: malformed internal node");
    }
    size_t slot = RouteSlot(v, cursor);
    stack.push_back({g.page_id(), slot});
    PageId child = v.child_at(slot);
    INSIGHTNOTES_ASSIGN_OR_RETURN(g, pool_->FetchPage(child));
  }
  BTreeNodeView leaf = ConstViewOf(g);
  if (leaf.kind() != kBTreeLeafKind) {
    return Status::Corruption("btree: descent did not reach a leaf");
  }
  if (LeafLowerBound(leaf, cursor) < leaf.count()) {
    *out = std::move(g);
    return Status::OK();
  }
  // Drained leaf: step to the next one to the right via the parent stack.
  while (!stack.empty()) {
    Level top = stack.back();
    stack.pop_back();
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard node, pool_->FetchPage(top.id));
    BTreeNodeView v = ConstViewOf(node);
    if (top.slot + 1 >= v.count()) continue;
    PageId child = v.child_at(top.slot + 1);
    node.Release();
    size_t levels_down = height_ - stack.size() - 1;
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard walk, pool_->FetchPage(child));
    for (size_t i = 0; i < levels_down; ++i) {
      BTreeNodeView wv = ConstViewOf(walk);
      if (wv.kind() != kBTreeInternalKind || wv.count() == 0) {
        return Status::Corruption("btree: malformed internal node");
      }
      PageId next_child = wv.child_at(0);
      INSIGHTNOTES_ASSIGN_OR_RETURN(walk, pool_->FetchPage(next_child));
    }
    if (ConstViewOf(walk).kind() != kBTreeLeafKind) {
      return Status::Corruption("btree: descent did not reach a leaf");
    }
    *out = std::move(walk);
    return Status::OK();
  }
  *done = true;
  return Status::OK();
}

Status BTree::LookupInto(const Value& value, std::vector<RowId>* out) const {
  BTreeKey first = EncodeBTreeKey(value, 0);
  unsigned char hi[kBTreeValueKeyBytes];
  std::memcpy(hi, first.bytes.data(), kBTreeValueKeyBytes);
  return ScanRange(first, hi, out);
}

Status BTree::RangeInto(const Value* lo, const Value* hi,
                        std::vector<RowId>* out) const {
  BTreeKey first{};  // All-zero composite: before everything, nulls included.
  if (lo != nullptr) first = EncodeBTreeKey(*lo, 0);
  unsigned char hi_bytes[kBTreeValueKeyBytes];
  const unsigned char* hi_ptr = nullptr;
  if (hi != nullptr) {
    EncodeBTreeValue(*hi, hi_bytes);
    hi_ptr = hi_bytes;
  }
  if (lo != nullptr && hi != nullptr &&
      std::memcmp(first.bytes.data(), hi_bytes, kBTreeValueKeyBytes) > 0) {
    return Status::OK();  // Reversed bounds: empty range.
  }
  return ScanRange(first, hi_ptr, out);
}

Status BTree::Discard() {
  if (root_ == kInvalidPageId) return Status::OK();
  // Iterative walk freeing every page; errors abandon the remainder (the
  // pages leak until the file is truncated, which beats corrupting state).
  std::vector<std::pair<PageId, uint32_t>> work = {{root_, 0}};
  Status first_error;
  while (!work.empty()) {
    auto [id, level] = work.back();
    work.pop_back();
    if (level < height_) {
      Result<PageGuard> g = pool_->FetchPage(id);
      if (!g.ok()) {
        if (first_error.ok()) first_error = g.status();
        continue;
      }
      BTreeNodeView v = ConstViewOf(*g);
      if (v.kind() == kBTreeInternalKind) {
        for (size_t i = 0; i < v.count(); ++i) {
          work.push_back({v.child_at(i), level + 1});
        }
      }
    }
    store_->Free(id);
  }
  root_ = kInvalidPageId;
  height_ = 0;
  entries_ = 0;
  return first_error;
}

Status BTree::CheckSubtree(storage::PageId id, uint32_t level,
                           const BTreeKey* lo, const BTreeKey* hi,
                           uint64_t* entries,
                           std::vector<storage::PageId>* leaves,
                           std::unordered_set<storage::PageId>* seen) const {
  if (!seen->insert(id).second) {
    return Status::Corruption("btree: page reachable twice");
  }
  if (store_->IsFreeOrPending(id)) {
    return Status::Corruption("btree: live page on the free list");
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(id));
  BTreeNodeView v = ConstViewOf(g);
  bool is_root = id == root_;
  if (level < height_) {
    if (v.kind() != kBTreeInternalKind) {
      return Status::Corruption("btree: leaf above leaf level");
    }
    size_t max_entries = store_->max_internal_entries();
    if (v.count() > max_entries) {
      return Status::Corruption("btree: internal fanout exceeded");
    }
    size_t min_needed = is_root ? 2 : MinEntries(max_entries);
    if (v.count() < min_needed) {
      return Status::Corruption("btree: internal node underfull");
    }
    for (size_t i = 0; i < v.count(); ++i) {
      BTreeKey sep = v.key_at(i);
      if (lo != nullptr && sep.Compare(*lo) < 0) {
        return Status::Corruption("btree: separator below lower bound");
      }
      if (hi != nullptr && sep.Compare(*hi) >= 0) {
        return Status::Corruption("btree: separator above upper bound");
      }
      if (i > 0 && !(v.key_at(i - 1) < sep)) {
        return Status::Corruption("btree: separators not ascending");
      }
      BTreeKey next_sep;
      const BTreeKey* child_hi = hi;
      if (i + 1 < v.count()) {
        next_sep = v.key_at(i + 1);
        child_hi = &next_sep;
      }
      INSIGHTNOTES_RETURN_IF_ERROR(CheckSubtree(v.child_at(i), level + 1, &sep,
                                                child_hi, entries, leaves,
                                                seen));
    }
    return Status::OK();
  }
  if (v.kind() != kBTreeLeafKind) {
    return Status::Corruption("btree: non-leaf at leaf depth");
  }
  size_t max_entries = store_->max_leaf_entries();
  if (v.count() > max_entries) {
    return Status::Corruption("btree: leaf fanout exceeded");
  }
  if (!is_root && v.count() < MinEntries(max_entries)) {
    return Status::Corruption("btree: leaf underfull");
  }
  for (size_t i = 0; i < v.count(); ++i) {
    BTreeKey k = v.key_at(i);
    if (lo != nullptr && k.Compare(*lo) < 0) {
      return Status::Corruption("btree: leaf key below lower bound");
    }
    if (hi != nullptr && k.Compare(*hi) >= 0) {
      return Status::Corruption("btree: leaf key above upper bound");
    }
    if (i > 0 && !(v.key_at(i - 1) < k)) {
      return Status::Corruption("btree: leaf keys not ascending");
    }
  }
  *entries += v.count();
  leaves->push_back(id);
  return Status::OK();
}

Status BTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) {
    return Status::Internal("btree: use after Discard()");
  }
  if (height_ > kMaxHeight) return Status::Corruption("btree: height runaway");
  uint64_t counted = 0;
  std::vector<PageId> leaves;
  std::unordered_set<PageId> seen;
  INSIGHTNOTES_RETURN_IF_ERROR(
      CheckSubtree(root_, 0, nullptr, nullptr, &counted, &leaves, &seen));
  if (counted != entries_) {
    return Status::Corruption("btree: entry count drifted");
  }
  // The leaf chain (validated hints + reseek fallback) must yield exactly
  // the in-order walk: collect rows both ways and compare.
  std::vector<RowId> in_order;
  for (PageId id : leaves) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(id));
    BTreeNodeView v = ConstViewOf(g);
    for (size_t i = 0; i < v.count(); ++i) {
      in_order.push_back(v.key_at(i).row());
    }
  }
  std::vector<RowId> chained;
  INSIGHTNOTES_RETURN_IF_ERROR(RangeInto(nullptr, nullptr, &chained));
  if (chained != in_order) {
    return Status::Corruption("btree: leaf chain diverges from walk order");
  }
  return Status::OK();
}

}  // namespace insightnotes::rel
