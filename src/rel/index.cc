#include "rel/index.h"

#include <algorithm>

namespace insightnotes::rel {

namespace {
int TypeClass(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kFloat64:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}
}  // namespace

bool ValueLess::operator()(const Value& a, const Value& b) const {
  int ca = TypeClass(a);
  int cb = TypeClass(b);
  if (ca != cb) return ca < cb;
  auto cmp = a.Compare(b);
  // Same type class => Compare cannot fail.
  return cmp.ok() && *cmp < 0;
}

void HashIndex::Insert(const Value& key, RowId row) {
  map_[key].push_back(row);
  ++num_entries_;
}

Status HashIndex::Remove(const Value& key, RowId row) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key not in index");
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) return Status::NotFound("row not in index for key");
  rows.erase(pos);
  if (rows.empty()) map_.erase(it);
  --num_entries_;
  return Status::OK();
}

void HashIndex::LookupInto(const Value& key, std::vector<RowId>* out) const {
  auto it = map_.find(key);
  if (it != map_.end()) out->insert(out->end(), it->second.begin(), it->second.end());
}

void OrderedIndex::Insert(const Value& key, RowId row) {
  map_[key].push_back(row);
  ++num_entries_;
}

Status OrderedIndex::Remove(const Value& key, RowId row) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key not in index");
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) return Status::NotFound("row not in index for key");
  rows.erase(pos);
  if (rows.empty()) map_.erase(it);
  --num_entries_;
  return Status::OK();
}

void OrderedIndex::LookupInto(const Value& key, std::vector<RowId>* out) const {
  auto it = map_.find(key);
  if (it != map_.end()) out->insert(out->end(), it->second.begin(), it->second.end());
}

void OrderedIndex::RangeInto(const Value* lo, const Value* hi,
                             std::vector<RowId>* out) const {
  // Reversed bounds would put `begin` past `end`, and the != walk below
  // would run off the map. An empty range is the only sane answer.
  if (lo != nullptr && hi != nullptr && ValueLess{}(*hi, *lo)) return;
  auto begin = lo != nullptr ? map_.lower_bound(*lo) : map_.begin();
  auto end = hi != nullptr ? map_.upper_bound(*hi) : map_.end();
  for (auto it = begin; it != end; ++it) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

}  // namespace insightnotes::rel
