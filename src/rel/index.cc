#include "rel/index.h"

#include <algorithm>

namespace insightnotes::rel {

namespace {
int TypeClass(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kFloat64:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}
}  // namespace

bool ValueLess::operator()(const Value& a, const Value& b) const {
  int ca = TypeClass(a);
  int cb = TypeClass(b);
  if (ca != cb) return ca < cb;
  auto cmp = a.Compare(b);
  // Same type class => Compare cannot fail.
  return cmp.ok() && *cmp < 0;
}

void HashIndex::Insert(const Value& key, RowId row) {
  map_[key].push_back(row);
  ++num_entries_;
}

Status HashIndex::Remove(const Value& key, RowId row) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key not in index");
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) return Status::NotFound("row not in index for key");
  rows.erase(pos);
  if (rows.empty()) map_.erase(it);
  --num_entries_;
  return Status::OK();
}

std::vector<RowId> HashIndex::Lookup(const Value& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? std::vector<RowId>{} : it->second;
}

void OrderedIndex::Insert(const Value& key, RowId row) {
  map_[key].push_back(row);
  ++num_entries_;
}

Status OrderedIndex::Remove(const Value& key, RowId row) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("key not in index");
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) return Status::NotFound("row not in index for key");
  rows.erase(pos);
  if (rows.empty()) map_.erase(it);
  --num_entries_;
  return Status::OK();
}

std::vector<RowId> OrderedIndex::Lookup(const Value& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? std::vector<RowId>{} : it->second;
}

std::vector<RowId> OrderedIndex::Range(const Value* lo, const Value* hi) const {
  auto begin = lo != nullptr ? map_.lower_bound(*lo) : map_.begin();
  auto end = hi != nullptr ? map_.upper_bound(*hi) : map_.end();
  std::vector<RowId> out;
  for (auto it = begin; it != end; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace insightnotes::rel
