#include "rel/value.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <sstream>

#include "common/hash.h"

namespace insightnotes::rel {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "BIGINT";
    case ValueType::kFloat64:
      return "DOUBLE";
    case ValueType::kString:
      return "TEXT";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kFloat64:
      return AsFloat64();
    default:
      return Status::TypeError(std::string("value of type ") +
                               std::string(ValueTypeToString(type())) +
                               " is not numeric");
  }
}

Result<int> Value::Compare(const Value& other) const {
  // NULLs: equal to each other, before everything else.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;

  bool this_numeric = type() == ValueType::kInt64 || type() == ValueType::kFloat64;
  bool other_numeric =
      other.type() == ValueType::kInt64 || other.type() == ValueType::kFloat64;
  if (this_numeric && other_numeric) {
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      int64_t a = AsInt64();
      int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = *ToNumeric();
    double b = *other.ToNumeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return Status::TypeError(std::string("cannot compare ") +
                           std::string(ValueTypeToString(type())) + " with " +
                           std::string(ValueTypeToString(other.type())));
}

bool Value::operator==(const Value& other) const {
  auto cmp = Compare(other);
  return cmp.ok() && *cmp == 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt64: {
      // Hash via the double representation so 5 == 5.0 implies equal hashes.
      double d = static_cast<double>(AsInt64());
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Fnv1a64(&bits, sizeof(bits));
    }
    case ValueType::kFloat64: {
      double d = AsFloat64();
      if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0.
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Fnv1a64(&bits, sizeof(bits));
    }
    case ValueType::kString:
      return Fnv1a64(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kFloat64: {
      std::ostringstream os;
      os << AsFloat64();
      return os.str();
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

void Value::Serialize(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64: {
      int64_t v = AsInt64();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kFloat64: {
      double v = AsFloat64();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kString: {
      const std::string& s = AsString();
      auto len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
  }
}

Result<Value> Value::Deserialize(std::string_view in, size_t* offset) {
  if (*offset >= in.size()) return Status::ParseError("value: truncated tag");
  auto tag = static_cast<ValueType>(in[*offset]);
  ++*offset;
  switch (tag) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      if (*offset + sizeof(int64_t) > in.size()) {
        return Status::ParseError("value: truncated int64");
      }
      int64_t v;
      std::memcpy(&v, in.data() + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value(v);
    }
    case ValueType::kFloat64: {
      if (*offset + sizeof(double) > in.size()) {
        return Status::ParseError("value: truncated double");
      }
      double v;
      std::memcpy(&v, in.data() + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value(v);
    }
    case ValueType::kString: {
      if (*offset + sizeof(uint32_t) > in.size()) {
        return Status::ParseError("value: truncated string length");
      }
      uint32_t len;
      std::memcpy(&len, in.data() + *offset, sizeof(len));
      *offset += sizeof(len);
      if (*offset + len > in.size()) {
        return Status::ParseError("value: truncated string payload");
      }
      Value v(std::string(in.substr(*offset, len)));
      *offset += len;
      return v;
    }
  }
  return Status::ParseError("value: unknown type tag");
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace insightnotes::rel
