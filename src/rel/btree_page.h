// On-page layout of the persistent B+-tree (src/rel/btree.{h,cc}).
//
// Index nodes live in ordinary DiskManager pages behind a BufferPool, so the
// first kPageDataOffset bytes of every page hold the CRC32 checksum word and
// the node header starts at kPageDataOffset:
//
//   [u8  kind]        1 = leaf, 2 = internal
//   [u8  reserved]
//   [u16 count]       number of entries in the node
//   [u32 next_page]   leaves: right-sibling hint (kInvalidPageId at the end)
//   [u64 stamp]       this page's allocation stamp (see below)
//   [u64 next_stamp]  leaves: allocation stamp of next_page at link time
//
// Keys are fixed-width 32-byte composites: 24 order-preserving value bytes
// followed by the 8-byte big-endian RowId. The value encoding is monotone
// but *non-strict* (distinct values may share an encoding after numeric
// coercion or string truncation), so probes return supersets and rely on the
// planner's residual filters — the same over-approximation contract the
// in-memory indexes already follow. The RowId suffix makes every composite
// unique and lets internal separators route equal-valued keys exactly.
//
// Leaf entries are bare composites (the row id is the last 8 key bytes).
// Internal entries are [composite][u32 child]; entry i's key is a *lower
// bound* for child i's subtree and an exclusive upper bound for child i-1's.
//
// Sibling links are hints, not invariants: copy-on-write moves pages without
// rewriting the neighbours that point at them, so a reader validates a hint
// (target not on the free list, header stamp equal to next_stamp) and falls
// back to a root descent when it is stale. Stamps are monotone per store, so
// a recycled page can never masquerade as the leaf the hint meant.

#ifndef INSIGHTNOTES_REL_BTREE_PAGE_H_
#define INSIGHTNOTES_REL_BTREE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "rel/tuple.h"
#include "rel/value.h"
#include "storage/disk_manager.h"

namespace insightnotes::rel {

inline constexpr size_t kBTreeValueKeyBytes = 24;
inline constexpr size_t kBTreeKeyBytes = kBTreeValueKeyBytes + sizeof(uint64_t);

inline constexpr uint8_t kBTreeLeafKind = 1;
inline constexpr uint8_t kBTreeInternalKind = 2;

/// A fully-encoded (value, row) composite key. Plain memcmp order.
struct BTreeKey {
  std::array<unsigned char, kBTreeKeyBytes> bytes{};

  int Compare(const BTreeKey& other) const {
    return std::memcmp(bytes.data(), other.bytes.data(), kBTreeKeyBytes);
  }
  bool operator<(const BTreeKey& other) const { return Compare(other) < 0; }
  bool operator==(const BTreeKey& other) const { return Compare(other) == 0; }

  RowId row() const {
    uint64_t r = 0;
    for (size_t i = 0; i < sizeof(uint64_t); ++i) {
      r = (r << 8) | bytes[kBTreeValueKeyBytes + i];
    }
    return r;
  }

  /// Compares only the 24 value bytes (all rows for one value compare 0).
  int CompareValue(const BTreeKey& other) const {
    return std::memcmp(bytes.data(), other.bytes.data(), kBTreeValueKeyBytes);
  }

  /// Smallest composite strictly greater than this one. The row suffix is
  /// below 2^64-1 for every real row, so the increment never carries past
  /// the value bytes in practice (and saturates harmlessly if it would).
  BTreeKey Successor() const {
    BTreeKey next = *this;
    for (size_t i = kBTreeKeyBytes; i-- > 0;) {
      if (++next.bytes[i] != 0) break;
    }
    return next;
  }
};

/// Encodes the 24 value bytes of `v` into `out[0..24)`: one type-class byte
/// (0 null / 1 numeric / 2 string) then an order-preserving payload. Numeric
/// values coerce to double first (matching Value::Compare's int<->double
/// coercion) and use the sign-flipped IEEE-754 trick; strings store their
/// first 23 raw bytes zero-padded. Monotone non-strict: v1 < v2 implies
/// enc(v1) <= enc(v2).
inline void EncodeBTreeValue(const Value& v, unsigned char* out) {
  std::memset(out, 0, kBTreeValueKeyBytes);
  switch (v.type()) {
    case ValueType::kNull:
      out[0] = 0;
      break;
    case ValueType::kInt64:
    case ValueType::kFloat64: {
      out[0] = 1;
      double d = v.type() == ValueType::kInt64
                     ? static_cast<double>(v.AsInt64())
                     : v.AsFloat64();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      if (bits >> 63) {
        bits = ~bits;  // Negative: flip everything so magnitude reverses.
      } else {
        bits |= uint64_t{1} << 63;  // Non-negative: above all negatives.
      }
      for (size_t i = 0; i < sizeof(bits); ++i) {
        out[1 + i] = static_cast<unsigned char>(bits >> (56 - 8 * i));
      }
      break;
    }
    case ValueType::kString: {
      out[0] = 2;
      const std::string& s = v.AsString();
      size_t n = s.size() < kBTreeValueKeyBytes - 1 ? s.size()
                                                    : kBTreeValueKeyBytes - 1;
      std::memcpy(out + 1, s.data(), n);
      break;
    }
  }
}

inline BTreeKey EncodeBTreeKey(const Value& v, RowId row) {
  BTreeKey key;
  EncodeBTreeValue(v, key.bytes.data());
  for (size_t i = 0; i < sizeof(uint64_t); ++i) {
    key.bytes[kBTreeValueKeyBytes + i] =
        static_cast<unsigned char>(row >> (56 - 8 * i));
  }
  return key;
}

// Header field offsets relative to the start of the page image.
inline constexpr size_t kBTreeKindOffset = storage::kPageDataOffset;
inline constexpr size_t kBTreeCountOffset = storage::kPageDataOffset + 2;
inline constexpr size_t kBTreeNextPageOffset = storage::kPageDataOffset + 4;
inline constexpr size_t kBTreeStampOffset = storage::kPageDataOffset + 8;
inline constexpr size_t kBTreeNextStampOffset = storage::kPageDataOffset + 16;
inline constexpr size_t kBTreePayloadOffset = storage::kPageDataOffset + 24;
inline constexpr size_t kBTreePayloadBytes =
    storage::kPageSize - kBTreePayloadOffset;

inline constexpr size_t kBTreeLeafEntryBytes = kBTreeKeyBytes;
inline constexpr size_t kBTreeInternalEntryBytes =
    kBTreeKeyBytes + sizeof(uint32_t);

/// Page-capacity fanouts (the store may clamp these down for tests).
inline constexpr size_t kBTreeLeafCapacity =
    kBTreePayloadBytes / kBTreeLeafEntryBytes;
inline constexpr size_t kBTreeInternalCapacity =
    kBTreePayloadBytes / kBTreeInternalEntryBytes;

/// Read/write view over one node's page image. The view does not own the
/// bytes and does no bounds checking beyond assert-free arithmetic; the
/// BTree code is responsible for staying within the configured fanout.
class BTreeNodeView {
 public:
  explicit BTreeNodeView(char* page) : page_(page) {}

  uint8_t kind() const { return Load<uint8_t>(kBTreeKindOffset); }
  uint16_t count() const { return Load<uint16_t>(kBTreeCountOffset); }
  storage::PageId next_page() const {
    return Load<uint32_t>(kBTreeNextPageOffset);
  }
  uint64_t stamp() const { return Load<uint64_t>(kBTreeStampOffset); }
  uint64_t next_stamp() const { return Load<uint64_t>(kBTreeNextStampOffset); }

  void set_kind(uint8_t k) { Store<uint8_t>(kBTreeKindOffset, k); }
  void set_count(uint16_t c) { Store<uint16_t>(kBTreeCountOffset, c); }
  void set_next(storage::PageId page, uint64_t stamp) {
    Store<uint32_t>(kBTreeNextPageOffset, page);
    Store<uint64_t>(kBTreeNextStampOffset, stamp);
  }
  void set_stamp(uint64_t s) { Store<uint64_t>(kBTreeStampOffset, s); }

  bool is_leaf() const { return kind() == kBTreeLeafKind; }

  BTreeKey key_at(size_t i) const {
    BTreeKey key;
    std::memcpy(key.bytes.data(), page_ + EntryOffset(i), kBTreeKeyBytes);
    return key;
  }
  storage::PageId child_at(size_t i) const {
    uint32_t child;
    std::memcpy(&child, page_ + EntryOffset(i) + kBTreeKeyBytes,
                sizeof(child));
    return child;
  }

  void WriteLeafEntry(size_t i, const BTreeKey& key) {
    std::memcpy(page_ + EntryOffset(i), key.bytes.data(), kBTreeKeyBytes);
  }
  void WriteInternalEntry(size_t i, const BTreeKey& key,
                          storage::PageId child) {
    char* at = page_ + EntryOffset(i);
    std::memcpy(at, key.bytes.data(), kBTreeKeyBytes);
    uint32_t c = child;
    std::memcpy(at + kBTreeKeyBytes, &c, sizeof(c));
  }

  /// Overwrites just the key of internal entry `i` (child pointer kept).
  void SetInternalKey(size_t i, const BTreeKey& key) {
    std::memcpy(page_ + EntryOffset(i), key.bytes.data(), kBTreeKeyBytes);
  }
  void SetChild(size_t i, storage::PageId child) {
    uint32_t c = child;
    std::memcpy(page_ + EntryOffset(i) + kBTreeKeyBytes, &c, sizeof(c));
  }

 private:
  size_t EntryBytes() const {
    return is_leaf() ? kBTreeLeafEntryBytes : kBTreeInternalEntryBytes;
  }
  size_t EntryOffset(size_t i) const {
    return kBTreePayloadOffset + i * EntryBytes();
  }

  template <typename T>
  T Load(size_t offset) const {
    T v;
    std::memcpy(&v, page_ + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void Store(size_t offset, T v) {
    std::memcpy(page_ + offset, &v, sizeof(T));
  }

  char* page_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_BTREE_PAGE_H_
