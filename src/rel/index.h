// Secondary indexes on single columns: a hash index for equality probes and
// an ordered index for range scans. The annotation store and zoom-in use
// these for tuple lookups.

#ifndef INSIGHTNOTES_REL_INDEX_H_
#define INSIGHTNOTES_REL_INDEX_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rel/tuple.h"
#include "rel/value.h"

namespace insightnotes::rel {

/// Total order over Values usable as a map comparator: orders first by type
/// class (NULL < numeric < string), then by value within the class. This
/// sidesteps the TypeError a raw Value::Compare would raise for mixed types.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const;
};

/// Hash functor/equality pair for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a == b; }
};

/// Equality index: value -> row ids (multimap semantics).
class HashIndex {
 public:
  void Insert(const Value& key, RowId row);
  /// Removes one (key, row) pairing; NotFound if absent.
  Status Remove(const Value& key, RowId row);
  /// Appends the rows with exactly this key to `out` — the allocation-free
  /// probe path (zoom-in, IndexScan).
  void LookupInto(const Value& key, std::vector<RowId>* out) const;
  /// Rows with exactly this key (empty vector if none).
  std::vector<RowId> Lookup(const Value& key) const {
    std::vector<RowId> out;
    LookupInto(key, &out);
    return out;
  }
  size_t NumEntries() const { return num_entries_; }

 private:
  std::unordered_map<Value, std::vector<RowId>, ValueHash, ValueEq> map_;
  size_t num_entries_ = 0;
};

/// Ordered index supporting range queries [lo, hi] (either bound optional).
class OrderedIndex {
 public:
  void Insert(const Value& key, RowId row);
  Status Remove(const Value& key, RowId row);
  /// Append-into probe paths (no per-probe vector allocation). Reversed
  /// bounds (hi < lo) yield an empty result.
  void LookupInto(const Value& key, std::vector<RowId>* out) const;
  void RangeInto(const Value* lo, const Value* hi, std::vector<RowId>* out) const;
  std::vector<RowId> Lookup(const Value& key) const {
    std::vector<RowId> out;
    LookupInto(key, &out);
    return out;
  }
  /// Rows with lo <= key <= hi. Null bounds mean unbounded.
  std::vector<RowId> Range(const Value* lo, const Value* hi) const {
    std::vector<RowId> out;
    RangeInto(lo, hi, &out);
    return out;
  }
  size_t NumEntries() const { return num_entries_; }

 private:
  std::map<Value, std::vector<RowId>, ValueLess> map_;
  size_t num_entries_ = 0;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_INDEX_H_
