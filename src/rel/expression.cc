#include "rel/expression.h"

#include <cmath>

#include "rel/schema.h"

namespace insightnotes::rel {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<bool> Expression::EvaluateBool(const Tuple& tuple) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(Value v, Evaluate(tuple));
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt64) return v.AsInt64() != 0;
  if (v.type() == ValueType::kFloat64) return v.AsFloat64() != 0.0;
  return Status::TypeError("predicate did not evaluate to a boolean/number");
}

Result<Value> ColumnRefExpr::Evaluate(const Tuple& tuple) const {
  if (index_ >= tuple.NumValues()) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of range for tuple of width " +
                            std::to_string(tuple.NumValues()));
  }
  return tuple.ValueAt(index_);
}

void ColumnRefExpr::CollectColumnRefs(std::vector<size_t>* out) const {
  out->push_back(index_);
}

ExprPtr ColumnRefExpr::Clone() const {
  return std::make_unique<ColumnRefExpr>(index_, display_name_);
}

ValueType ColumnRefExpr::InferType(const Schema& schema) const {
  if (index_ >= schema.NumColumns()) return ValueType::kNull;
  return schema.ColumnAt(index_).type;
}

Result<Value> LiteralExpr::Evaluate(const Tuple&) const { return value_; }

void LiteralExpr::CollectColumnRefs(std::vector<size_t>*) const {}

ExprPtr LiteralExpr::Clone() const { return std::make_unique<LiteralExpr>(value_); }

std::string LiteralExpr::ToString() const {
  if (value_.type() == ValueType::kString) return "'" + value_.ToString() + "'";
  return value_.ToString();
}

Result<Value> CompareExpr::Evaluate(const Tuple& tuple) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(Value l, left_->Evaluate(tuple));
  INSIGHTNOTES_ASSIGN_OR_RETURN(Value r, right_->Evaluate(tuple));
  // SQL-ish NULL handling: any comparison with NULL is NULL.
  if (l.is_null() || r.is_null()) return Value::Null();
  INSIGHTNOTES_ASSIGN_OR_RETURN(int c, l.Compare(r));
  bool result = false;
  switch (op_) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value(static_cast<int64_t>(result ? 1 : 0));
}

void CompareExpr::CollectColumnRefs(std::vector<size_t>* out) const {
  left_->CollectColumnRefs(out);
  right_->CollectColumnRefs(out);
}

ExprPtr CompareExpr::Clone() const {
  return std::make_unique<CompareExpr>(op_, left_->Clone(), right_->Clone());
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + std::string(CompareOpToString(op_)) + " " +
         right_->ToString() + ")";
}

Result<Value> LogicalExpr::Evaluate(const Tuple& tuple) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool l, left_->EvaluateBool(tuple));
  if (op_ == LogicalOp::kAnd && !l) return Value(static_cast<int64_t>(0));
  if (op_ == LogicalOp::kOr && l) return Value(static_cast<int64_t>(1));
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool r, right_->EvaluateBool(tuple));
  return Value(static_cast<int64_t>(r ? 1 : 0));
}

void LogicalExpr::CollectColumnRefs(std::vector<size_t>* out) const {
  left_->CollectColumnRefs(out);
  right_->CollectColumnRefs(out);
}

ExprPtr LogicalExpr::Clone() const {
  return std::make_unique<LogicalExpr>(op_, left_->Clone(), right_->Clone());
}

std::string LogicalExpr::ToString() const {
  return "(" + left_->ToString() + (op_ == LogicalOp::kAnd ? " AND " : " OR ") +
         right_->ToString() + ")";
}

Result<Value> NotExpr::Evaluate(const Tuple& tuple) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool v, inner_->EvaluateBool(tuple));
  return Value(static_cast<int64_t>(v ? 0 : 1));
}

void NotExpr::CollectColumnRefs(std::vector<size_t>* out) const {
  inner_->CollectColumnRefs(out);
}

ExprPtr NotExpr::Clone() const { return std::make_unique<NotExpr>(inner_->Clone()); }

std::string NotExpr::ToString() const { return "(NOT " + inner_->ToString() + ")"; }

Result<Value> ArithmeticExpr::Evaluate(const Tuple& tuple) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(Value l, left_->Evaluate(tuple));
  INSIGHTNOTES_ASSIGN_OR_RETURN(Value r, right_->Evaluate(tuple));
  if (l.is_null() || r.is_null()) return Value::Null();
  // String + string is concatenation; all other string arithmetic is a
  // type error.
  if (op_ == ArithmeticOp::kAdd && l.type() == ValueType::kString &&
      r.type() == ValueType::kString) {
    return Value(l.AsString() + r.AsString());
  }
  bool both_int = l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64;
  INSIGHTNOTES_ASSIGN_OR_RETURN(double lv, l.ToNumeric());
  INSIGHTNOTES_ASSIGN_OR_RETURN(double rv, r.ToNumeric());
  switch (op_) {
    case ArithmeticOp::kAdd:
      return both_int ? Value(l.AsInt64() + r.AsInt64()) : Value(lv + rv);
    case ArithmeticOp::kSub:
      return both_int ? Value(l.AsInt64() - r.AsInt64()) : Value(lv - rv);
    case ArithmeticOp::kMul:
      return both_int ? Value(l.AsInt64() * r.AsInt64()) : Value(lv * rv);
    case ArithmeticOp::kDiv:
      if (rv == 0.0) return Status::InvalidArgument("division by zero");
      if (both_int) return Value(l.AsInt64() / r.AsInt64());
      return Value(lv / rv);
  }
  return Status::Internal("unknown arithmetic op");
}

void ArithmeticExpr::CollectColumnRefs(std::vector<size_t>* out) const {
  left_->CollectColumnRefs(out);
  right_->CollectColumnRefs(out);
}

ExprPtr ArithmeticExpr::Clone() const {
  return std::make_unique<ArithmeticExpr>(op_, left_->Clone(), right_->Clone());
}

ValueType ArithmeticExpr::InferType(const Schema& schema) const {
  ValueType l = left_->InferType(schema);
  ValueType r = right_->InferType(schema);
  if (op_ == ArithmeticOp::kAdd && l == ValueType::kString &&
      r == ValueType::kString) {
    return ValueType::kString;
  }
  if (l == ValueType::kInt64 && r == ValueType::kInt64) return ValueType::kInt64;
  bool l_numeric = l == ValueType::kInt64 || l == ValueType::kFloat64;
  bool r_numeric = r == ValueType::kInt64 || r == ValueType::kFloat64;
  if (l_numeric && r_numeric) return ValueType::kFloat64;
  return ValueType::kNull;  // Statically unknown (or a runtime type error).
}

std::string ArithmeticExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithmeticOp::kAdd:
      op = "+";
      break;
    case ArithmeticOp::kSub:
      op = "-";
      break;
    case ArithmeticOp::kMul:
      op = "*";
      break;
    case ArithmeticOp::kDiv:
      op = "/";
      break;
  }
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

ExprPtr MakeColumn(size_t index, std::string display_name) {
  if (display_name.empty()) display_name = "$" + std::to_string(index);
  return std::make_unique<ColumnRefExpr>(index, std::move(display_name));
}

ExprPtr MakeLiteral(Value value) { return std::make_unique<LiteralExpr>(std::move(value)); }

ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<CompareExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeAnd(ExprPtr left, ExprPtr right) {
  return std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(left), std::move(right));
}

ExprPtr MakeOr(ExprPtr left, ExprPtr right) {
  return std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(left), std::move(right));
}

ExprPtr MakeNot(ExprPtr inner) { return std::make_unique<NotExpr>(std::move(inner)); }

ExprPtr MakeArithmetic(ArithmeticOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<ArithmeticExpr>(op, std::move(left), std::move(right));
}

}  // namespace insightnotes::rel
