#include "rel/catalog.h"

#include <algorithm>

namespace insightnotes::rel {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  TableId id = next_id_++;
  auto table = std::make_unique<Table>(id, name, std::move(schema), pool_);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  by_id_.emplace(id, raw);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.get();
}

Result<Table*> Catalog::GetTableById(TableId id) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("table id " + std::to_string(id) + " does not exist");
  }
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  by_id_.erase(it->second->id());
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace insightnotes::rel
