#include "rel/tuple.h"

#include <cstring>

#include "common/hash.h"

namespace insightnotes::rel {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values = left.values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

void Tuple::Serialize(std::string* out) const {
  auto count = static_cast<uint16_t>(values_.size());
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Value& v : values_) v.Serialize(out);
}

Result<Tuple> Tuple::Deserialize(std::string_view in) {
  if (in.size() < sizeof(uint16_t)) return Status::ParseError("tuple: truncated header");
  uint16_t count;
  std::memcpy(&count, in.data(), sizeof(count));
  size_t offset = sizeof(count);
  std::vector<Value> values;
  values.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(Value v, Value::Deserialize(in, &offset));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x51ed270b9f442d22ULL;
  for (const Value& v : values_) {
    HashCombine(&h, v.Hash());
  }
  return h;
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!(values_[i] == other.values_[i])) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace insightnotes::rel
