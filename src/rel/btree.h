// Persistent copy-on-write B+-tree index stored through the buffer pool.
//
// All indexes of one engine share a BTreeStore: a page allocator over the
// engine's dedicated index file (db_path + ".idx") with shadow-paging
// epochs. Mutations never overwrite a page referenced by the last committed
// index checkpoint — every node on the mutation path is copied to a fresh
// page first ("shadowed"), and the pages the copies replace only become
// reusable after the next checkpoint commits. The commit point is: flush +
// fsync the index file, then append a WalIndexCheckpointRecord carrying the
// roots, entry counts, covered-row bounds, free list and page count. A crash
// anywhere between commits leaves the previous committed tree fully intact,
// so recovery just adopts the recorded roots — no table scan, no tree walk.
//
// Recovery catch-up: the engine's row heap is rebuilt by the caller after
// open (rows are configuration, the WAL is truth for annotations), so a
// recovered tree may already cover a prefix of the rows the caller re-adds.
// covered_rows persists that bound: InsertForRow skips rows below it and
// RemoveForRow tolerates NotFound below it, making the caller's re-run of
// its setup idempotent against the committed tree.

#ifndef INSIGHTNOTES_REL_BTREE_H_
#define INSIGHTNOTES_REL_BTREE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/btree_page.h"
#include "rel/tuple.h"
#include "rel/value.h"
#include "storage/buffer_pool.h"

namespace insightnotes::rel {

/// Allocator + epoch state persisted by each index checkpoint record.
struct BTreeStoreMeta {
  uint64_t page_count = 0;  // Pages ever allocated in the index file.
  uint64_t next_stamp = 1;  // Monotone allocation-stamp counter.
  std::vector<storage::PageId> free_pages;  // Reusable after the checkpoint.
};

/// Per-tree state persisted by each index checkpoint record.
struct BTreeMeta {
  storage::PageId root = storage::kInvalidPageId;
  uint32_t height = 0;   // Levels below the root; 0 = the root is a leaf.
  uint64_t entries = 0;  // Live (key, row) composites in the tree.
  RowId covered_rows = 0;  // Committed tree reflects rows [0, covered_rows).
};

/// Shared page allocator for every B+-tree of one engine. Thread-safe: the
/// internal mutex guards the free lists, fresh set and counters (page bytes
/// go through the BufferPool, which synchronizes itself). Tree structure
/// above the store is synchronized by the owning Table's latch.
class BTreeStore {
 public:
  /// `max_node_entries` clamps both leaf and internal fanout (0 = use the
  /// page capacity); tests shrink it to force deep trees on tiny data.
  BTreeStore(storage::BufferPool* pool, BTreeStoreMeta meta = {},
             size_t max_node_entries = 0);

  storage::BufferPool* pool() const { return pool_; }
  size_t max_leaf_entries() const { return max_leaf_entries_; }
  size_t max_internal_entries() const { return max_internal_entries_; }

  /// Allocates a zeroed page (reusing the committed free list when
  /// possible), assigns it a fresh stamp and marks it fresh-this-epoch.
  Result<storage::PageGuard> Allocate(uint64_t* stamp_out);

  /// Returns a page to the allocator. Fresh pages (allocated since the last
  /// commit) are reusable immediately; committed pages only after the next
  /// commit (the last checkpoint may still reference them).
  void Free(storage::PageId id);

  /// True if the page was allocated since the last committed epoch (and may
  /// therefore be mutated in place).
  bool IsFresh(storage::PageId id) const;

  /// True if the page is on the free list or pending-free — i.e. not part
  /// of the live tree. Used to invalidate stale sibling hints.
  bool IsFreeOrPending(storage::PageId id) const;

  /// The allocator state a checkpoint record written *now* should persist:
  /// the free list includes pending frees, because once that record commits
  /// the pages it shadows are no longer referenced.
  BTreeStoreMeta CommitMeta() const;

  /// Seals the epoch after a successful checkpoint commit: pending frees
  /// become allocatable and every page loses its fresh status.
  void CommitEpoch();

 private:
  storage::BufferPool* pool_;
  size_t max_leaf_entries_;
  size_t max_internal_entries_;
  mutable std::mutex mutex_;
  uint64_t page_count_;
  uint64_t next_stamp_;
  std::vector<storage::PageId> free_;          // Allocatable now.
  std::vector<storage::PageId> freed_pending_; // Allocatable next epoch.
  std::unordered_set<storage::PageId> free_lookup_;  // free_ + freed_pending_
  std::unordered_set<storage::PageId> fresh_;
};

/// One persistent index: a B+-tree over the 32-byte composite keys of
/// btree_page.h. Mutations require external exclusive synchronization
/// (the Table latch under the engine writer mutex); const probes may run
/// concurrently with each other under shared latches.
class BTree {
 public:
  /// Creates an empty tree (allocates its root leaf).
  static Result<std::unique_ptr<BTree>> Create(BTreeStore* store);

  /// Adopts a committed tree from checkpoint metadata. No I/O.
  static std::unique_ptr<BTree> Attach(BTreeStore* store,
                                       const BTreeMeta& meta);

  /// Index maintenance for a heap row. InsertForRow is a no-op for rows
  /// below covered_rows (already in the committed tree); RemoveForRow
  /// treats NotFound below covered_rows as success for the same reason.
  Status InsertForRow(const Value& value, RowId row);
  Status RemoveForRow(const Value& value, RowId row);

  /// Appends every row whose value equals `value` (probe semantics may
  /// over-approximate; callers re-filter).
  Status LookupInto(const Value& value, std::vector<RowId>* out) const;

  /// Appends rows with lo <= value <= hi (nullptr bound = unbounded).
  /// Reversed bounds yield an empty result.
  Status RangeInto(const Value* lo, const Value* hi,
                   std::vector<RowId>* out) const;

  BTreeMeta meta() const {
    return BTreeMeta{root_, height_, entries_, covered_rows_};
  }
  uint64_t NumEntries() const { return entries_; }
  RowId covered_rows() const { return covered_rows_; }
  void set_covered_rows(RowId rows) { covered_rows_ = rows; }

  /// Frees every page of the tree (used when an uncommitted build is
  /// abandoned or an index is dropped/replaced). The tree is unusable
  /// afterwards.
  Status Discard();

  /// Structural battery for tests: node kinds and fanout bounds per level,
  /// separator ordering (lower-bound invariant), uniform leaf depth, leaf
  /// chain equal to the in-order walk, entry count equal to NumEntries(),
  /// and no live page on the free list.
  Status CheckInvariants() const;

 private:
  BTree(BTreeStore* store, const BTreeMeta& meta);

  struct PathEntry {
    storage::PageId id;
    uint16_t slot;
  };

  /// Copies `id` to a fresh page unless it already is fresh. Returns the
  /// (possibly new) id; `*guard` pins it writable.
  Result<storage::PageId> Shadow(storage::PageId id,
                                 storage::PageGuard* guard);

  /// Shadow-descends to the leaf for `key`, recording parent slots, and
  /// rewiring shadowed child pointers. `*leaf` pins the fresh leaf.
  Status DescendForWrite(const BTreeKey& key, std::vector<PathEntry>* path,
                         storage::PageGuard* leaf);

  Status InsertKey(const BTreeKey& key);
  Status RemoveKey(const BTreeKey& key, bool* found);

  /// Read-only descent to the leaf whose range covers `key`.
  Result<storage::PageGuard> SeekLeaf(const BTreeKey& key) const;

  Status ScanRange(const BTreeKey& first, const unsigned char* hi_value,
                   std::vector<RowId>* out) const;

  /// Stale-hint fallback: finds the leaf where a scan positioned at
  /// `cursor` should continue (sets *done when the scan is exhausted).
  Status ReseekScan(const BTreeKey& cursor, storage::PageGuard* out,
                    bool* done) const;

  Status CheckSubtree(storage::PageId id, uint32_t level, const BTreeKey* lo,
                      const BTreeKey* hi, uint64_t* entries,
                      std::vector<storage::PageId>* leaves,
                      std::unordered_set<storage::PageId>* seen) const;

  BTreeStore* store_;
  storage::BufferPool* pool_;
  storage::PageId root_;
  uint32_t height_;
  uint64_t entries_;
  RowId covered_rows_;
};

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_BTREE_H_
