// Bound expression trees evaluated against tuples: column references (by
// index), literals, comparisons, boolean connectives and arithmetic. The
// SQL binder lowers parsed expressions into these.

#ifndef INSIGHTNOTES_REL_EXPRESSION_H_
#define INSIGHTNOTES_REL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/tuple.h"
#include "rel/value.h"

namespace insightnotes::rel {

class Expression;
class Schema;
using ExprPtr = std::unique_ptr<Expression>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };
enum class ArithmeticOp { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);

class Expression {
 public:
  virtual ~Expression() = default;

  /// Evaluates against `tuple`. Boolean results are Int64 0/1.
  virtual Result<Value> Evaluate(const Tuple& tuple) const = 0;

  /// Appends the indexes of all referenced columns to `out` (with repeats).
  virtual void CollectColumnRefs(std::vector<size_t>* out) const = 0;

  virtual ExprPtr Clone() const = 0;
  virtual std::string ToString() const = 0;

  /// Static result type of the expression when evaluated against tuples of
  /// `schema`. kNull when the type cannot be determined statically (e.g. a
  /// kNull-typed input column). Used to type aggregate output schemas.
  virtual ValueType InferType(const Schema& schema) const = 0;

  /// Evaluates as a predicate: NULL results count as false.
  Result<bool> EvaluateBool(const Tuple& tuple) const;
};

class ColumnRefExpr final : public Expression {
 public:
  ColumnRefExpr(size_t index, std::string display_name)
      : index_(index), display_name_(std::move(display_name)) {}

  Result<Value> Evaluate(const Tuple& tuple) const override;
  void CollectColumnRefs(std::vector<size_t>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override { return display_name_; }
  ValueType InferType(const Schema& schema) const override;

  size_t index() const { return index_; }

 private:
  size_t index_;
  std::string display_name_;
};

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  Result<Value> Evaluate(const Tuple& tuple) const override;
  void CollectColumnRefs(std::vector<size_t>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ValueType InferType(const Schema&) const override { return value_.type(); }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

class CompareExpr final : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Evaluate(const Tuple& tuple) const override;
  void CollectColumnRefs(std::vector<size_t>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  // Boolean results are Int64 0/1.
  ValueType InferType(const Schema&) const override { return ValueType::kInt64; }

  CompareOp op() const { return op_; }
  const Expression& left() const { return *left_; }
  const Expression& right() const { return *right_; }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class LogicalExpr final : public Expression {
 public:
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Evaluate(const Tuple& tuple) const override;
  void CollectColumnRefs(std::vector<size_t>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ValueType InferType(const Schema&) const override { return ValueType::kInt64; }

 private:
  LogicalOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expression {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}

  Result<Value> Evaluate(const Tuple& tuple) const override;
  void CollectColumnRefs(std::vector<size_t>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ValueType InferType(const Schema&) const override { return ValueType::kInt64; }

 private:
  ExprPtr inner_;
};

class ArithmeticExpr final : public Expression {
 public:
  ArithmeticExpr(ArithmeticOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Result<Value> Evaluate(const Tuple& tuple) const override;
  void CollectColumnRefs(std::vector<size_t>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  ValueType InferType(const Schema& schema) const override;

 private:
  ArithmeticOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

// Convenience builders (used heavily in tests and the planner).
ExprPtr MakeColumn(size_t index, std::string display_name = "");
ExprPtr MakeLiteral(Value value);
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeAnd(ExprPtr left, ExprPtr right);
ExprPtr MakeOr(ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr inner);
ExprPtr MakeArithmetic(ArithmeticOp op, ExprPtr left, ExprPtr right);

}  // namespace insightnotes::rel

#endif  // INSIGHTNOTES_REL_EXPRESSION_H_
