#include "storage/disk_manager.h"

#include <cstring>

namespace insightnotes::storage {

DiskManager::~DiskManager() { Close().ok(); }

Status DiskManager::Open(const std::string& path) {
  if (is_open()) return Status::Internal("DiskManager already open");
  path_ = path;
  if (path.empty()) {
    in_memory_ = true;
    num_pages_ = 0;
    return Status::OK();
  }
  // "wb+" truncates: each DiskManager instance owns a fresh file. Reopening
  // existing databases is out of scope for this engine (annotation stores
  // are rebuilt from the workload generators).
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::IoError("cannot open database file '" + path + "'");
  }
  num_pages_ = 0;
  return Status::OK();
}

Status DiskManager::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  in_memory_ = false;
  memory_.clear();
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (!is_open()) return Status::Internal("DiskManager not open");
  PageId id = num_pages_++;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  INSIGHTNOTES_RETURN_IF_ERROR(WritePage(id, zeros));
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (!is_open()) return Status::Internal("DiskManager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(id));
  }
  ++num_reads_;
  if (in_memory_) {
    std::memcpy(out, memory_.data() + static_cast<size_t>(id) * kPageSize, kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize), SEEK_SET) != 0) {
    return Status::IoError("seek failed for page " + std::to_string(id));
  }
  if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("short read for page " + std::to_string(id));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (!is_open()) return Status::Internal("DiskManager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " + std::to_string(id));
  }
  ++num_writes_;
  if (in_memory_) {
    size_t needed = static_cast<size_t>(id + 1) * kPageSize;
    if (memory_.size() < needed) memory_.resize(needed, '\0');
    std::memcpy(memory_.data() + static_cast<size_t>(id) * kPageSize, data, kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize), SEEK_SET) != 0) {
    return Status::IoError("seek failed for page " + std::to_string(id));
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("short write for page " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace insightnotes::storage
