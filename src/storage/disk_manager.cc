#include "storage/disk_manager.h"

#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/hash.h"
#include "common/logging.h"
#include "storage/wal.h"  // storage::FsyncDir

namespace insightnotes::storage {

namespace {

/// Size of the file behind `file`, or -1. Leaves the position at the end.
long FileSize(std::FILE* file) {
  if (std::fseek(file, 0, SEEK_END) != 0) return -1;
  return std::ftell(file);
}

}  // namespace

DiskManager::~DiskManager() {
  Status s = Close();
  if (!s.ok()) {
    INSIGHTNOTES_LOG(Error) << "DiskManager::Close failed in destructor: "
                            << s.ToString();
  }
}

Status DiskManager::Open(const std::string& path, DiskOpenMode mode) {
  if (is_open()) return Status::Internal("DiskManager already open");
  path_ = path;
  if (path.empty()) {
    in_memory_ = true;
    num_pages_ = 0;
    return Status::OK();
  }
  if (mode == DiskOpenMode::kOpenExisting) {
    // "rb+" keeps existing pages; fall through to creation when the file
    // does not exist yet.
    file_ = std::fopen(path.c_str(), "rb+");
    if (file_ != nullptr) {
      long size = FileSize(file_);
      if (size < 0) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("cannot size database file '" + path + "'");
      }
      // Round up: a torn trailing partial page still occupies an id (its
      // read reports Corruption, which recovery counts).
      num_pages_ = static_cast<uint32_t>((static_cast<size_t>(size) + kPageSize - 1) /
                                         kPageSize);
      return Status::OK();
    }
  }
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::IoError("cannot open database file '" + path + "'");
  }
  num_pages_ = 0;
  return Status::OK();
}

Status DiskManager::Close() {
  Status result = Status::OK();
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) {
      result = Status::IoError("flush on close failed for '" + path_ +
                               "': " + std::strerror(errno));
    }
    if (std::fclose(file_) != 0 && result.ok()) {
      result = Status::IoError("close failed for '" + path_ +
                               "': " + std::strerror(errno));
    }
    file_ = nullptr;
  }
  in_memory_ = false;
  memory_.clear();
  return result;
}

Status DiskManager::Fsync() {
  if (!is_open()) return Status::Internal("DiskManager not open");
  if (in_memory_) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IoError("fflush failed for '" + path_ + "': " + std::strerror(errno));
  }
#if !defined(_WIN32)
  if (::fsync(fileno(file_)) != 0) {
    return Status::IoError("fsync failed for '" + path_ + "': " + std::strerror(errno));
  }
#endif
  return Status::OK();
}

Status DiskManager::FsyncDir(const std::string& dir_path) {
  if (in_memory_) return Status::OK();
  return storage::FsyncDir(dir_path);
}

Result<PageId> DiskManager::AllocatePage() {
  if (!is_open()) return Status::Internal("DiskManager not open");
  PageId id = num_pages_++;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  Status written = WritePage(id, zeros);
  if (!written.ok()) {
    // Roll back so the failed id is not left permanently unreadable; the
    // next allocation retries the same id.
    num_pages_ = id;
    return written;
  }
  return id;
}

void DiskManager::StampChecksum(const char* data, char* out) {
  std::memcpy(out, data, kPageSize);
  uint32_t crc = Crc32(data + kPageDataOffset, kPageSize - kPageDataOffset);
  std::memcpy(out, &crc, sizeof(crc));
}

Status DiskManager::WriteRaw(PageId id, const char* data, size_t len) {
  if (in_memory_) {
    size_t needed = static_cast<size_t>(id + 1) * kPageSize;
    if (memory_.size() < needed) memory_.resize(needed, '\0');
    std::memcpy(memory_.data() + static_cast<size_t>(id) * kPageSize, data, len);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed for page " + std::to_string(id));
  }
  if (std::fwrite(data, 1, len, file_) != len) {
    return Status::IoError("short write for page " + std::to_string(id));
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (!is_open()) return Status::Internal("DiskManager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(id));
  }
  ++num_reads_;
  if (in_memory_) {
    size_t offset = static_cast<size_t>(id) * kPageSize;
    if (memory_.size() < offset + kPageSize) {
      return Status::Corruption("short read for page " + std::to_string(id));
    }
    std::memcpy(out, memory_.data() + offset, kPageSize);
  } else {
    if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                   SEEK_SET) != 0) {
      return Status::IoError("seek failed for page " + std::to_string(id));
    }
    // A short read means the page was never fully written (torn tail); the
    // page file's length is otherwise always a multiple of kPageSize.
    if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
      return Status::Corruption("short read for page " + std::to_string(id));
    }
  }
  uint32_t stored;
  std::memcpy(&stored, out, sizeof(stored));
  uint32_t computed = Crc32(out + kPageDataOffset, kPageSize - kPageDataOffset);
  if (stored != computed) {
    return Status::Corruption("checksum mismatch on page " + std::to_string(id) +
                              " (torn or corrupted write)");
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (!is_open()) return Status::Internal("DiskManager not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page " + std::to_string(id));
  }
  ++num_writes_;
  char stamped[kPageSize];
  StampChecksum(data, stamped);
  return WriteRaw(id, stamped, kPageSize);
}

}  // namespace insightnotes::storage
