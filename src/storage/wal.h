// WriteAheadLog: an append-only log of length-prefixed, CRC32-checksummed
// byte records, synced to stable storage before the structures it protects
// are mutated. The annotation layer logs logical {annotation, region}
// records here (see annotation/wal_records.h); on reopen the engine replays
// the log to rebuild the raw-annotation store, treating the page file as a
// rebuildable cache of annotation bodies.
//
// On-disk format:
//   [8-byte magic "INWAL\x01\0\0"]
//   repeated records: [u32 payload length][u32 CRC32(payload)][payload]
//
// A crash can leave a torn tail (a partial record, or a record whose CRC
// does not match). Replay stops at the first such record and reports how
// many bytes it dropped; Open(..., keep_bytes) truncates the tail so new
// appends start from a clean prefix.

#ifndef INSIGHTNOTES_STORAGE_WAL_H_
#define INSIGHTNOTES_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace insightnotes::storage {

/// Fsyncs directory `dir_path` itself (not its contents). POSIX only makes
/// a rename, create or unlink of a directory entry durable once the
/// directory's own inode is synced; skipping this lets a power loss
/// resurrect the old entry (or lose the new one). No-op on Windows, where
/// directory handles cannot be flushed and NTFS journals namespace updates.
Status FsyncDir(const std::string& dir_path);

/// Fsyncs the directory containing `file_path` (see FsyncDir).
Status FsyncDirOf(const std::string& file_path);

class WriteAheadLog {
 public:
  /// Replay outcome: records delivered and where the valid prefix ends.
  struct ReplayStats {
    uint64_t records = 0;
    uint64_t valid_bytes = 0;      // Magic + complete, checksum-valid records.
    uint64_t truncated_bytes = 0;  // Torn/corrupt tail bytes past the prefix.
  };

  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending. With `truncate` the log starts empty (a
  /// fresh database); otherwise existing records are kept and, when
  /// `keep_bytes` (from ReplayStats::valid_bytes) is given, a torn tail
  /// beyond it is cut off first.
  Status Open(const std::string& path, bool truncate,
              uint64_t keep_bytes = UINT64_MAX);

  /// Appends one record. Buffered; call Sync() to make it durable. The
  /// record only counts as committed once Sync() returns OK. A partially
  /// written frame (short write, e.g. ENOSPC) is rewound to the pre-append
  /// offset so acknowledged records stay contiguous; if the rewind itself
  /// fails, the log enters a failed state and refuses further appends
  /// (see failed()) rather than let new records land after a torn frame
  /// that replay would stop at.
  Status Append(std::string_view payload);

  /// Flushes and fsyncs all appended records.
  Status Sync();

  /// Byte offset the next Append writes at. Capture it before an append to
  /// be able to roll the record back with TruncateTo if the mutation it
  /// describes is never applied.
  Result<uint64_t> AppendOffset();

  /// Discards every byte at or past `offset` (from AppendOffset), making
  /// the rollback durable (ftruncate + fsync). Also repairs a failed()
  /// log: on success the valid prefix ends at `offset` and appends are
  /// accepted again. On failure the log is (or stays) failed.
  Status TruncateTo(uint64_t offset);

  /// Atomically replaces the entire log with `payloads` (in order): the
  /// records are written to a sibling temp file, synced, and renamed over
  /// the live log, which is then reopened for appending. Used by
  /// checkpoint-time compaction to swap the append-only history for an
  /// equivalent snapshot. A failure before the rename leaves the original
  /// log untouched; a failure after it reports the log failed/closed so
  /// the caller falls back to recovery-by-replay semantics.
  Status Rewrite(const std::vector<std::string>& payloads);

  /// Test seam: invoked before each scripted Rewrite step with the step's
  /// name ("temp_create", "temp_header", "temp_write" per payload,
  /// "temp_fsync", "temp_close", "live_close", "rename", "dir_fsync",
  /// "post_rename").
  /// A non-OK return simulates a crash at that point: both file handles
  /// are abandoned exactly as they are on disk (no cleanup, no rename
  /// rollback) and the log reports closed, the way a process kill would
  /// leave it for the next reopen-and-replay.
  using RewriteFaultHook = std::function<Status(const char* op)>;
  void SetRewriteFaultHook(RewriteFaultHook hook) {
    rewrite_fault_hook_ = std::move(hook);
  }

  Status Close();

  bool is_open() const { return file_ != nullptr; }
  /// True after a partial append could not be rewound: the file may end in
  /// a torn frame, so Append/Sync are refused until TruncateTo or a
  /// reopen repairs the tail.
  bool failed() const { return failed_; }
  /// Successful Append calls since Open (not reduced by TruncateTo).
  uint64_t num_appended() const { return num_appended_; }

  /// Reads `path` and invokes `fn` for each complete, checksum-valid
  /// record in order, stopping early on a non-OK return. A missing file is
  /// an empty log. A torn or corrupt tail ends replay (reported in the
  /// stats, not an error); a bad magic header is Corruption.
  static Result<ReplayStats> Replay(
      const std::string& path,
      const std::function<Status(std::string_view payload)>& fn);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  uint64_t num_appended_ = 0;
  RewriteFaultHook rewrite_fault_hook_;
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_WAL_H_
