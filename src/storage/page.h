// SlottedPage: classic variable-length-record page layout.
//
//   [ checksum | header | slot directory -> ...grows right | free | ...records grow left ]
//
// The leading checksum word (kPageDataOffset bytes) belongs to the disk
// layer (see storage/disk_manager.h); the slotted layout starts after it.
// Header: {record count, free-space pointer}. Each slot holds {offset, len};
// a deleted record leaves a tombstone slot (offset = kTombstone) so slot ids
// stay stable, which lets RecordIds (page_id, slot) be permanent handles.
//
// Readers never trust the buffer: a page that arrives corrupted (bad slot
// offsets, lengths crossing the free-space pointer, an impossible slot
// directory) yields Status::Corruption from the accessors rather than
// out-of-bounds access.

#ifndef INSIGHTNOTES_STORAGE_PAGE_H_
#define INSIGHTNOTES_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

#include "common/result.h"
#include "storage/disk_manager.h"

namespace insightnotes::storage {

using SlotId = uint16_t;

/// View over a kPageSize buffer interpreted as a slotted page. Does not own
/// the buffer (the buffer pool does).
class SlottedPage {
 public:
  /// Wraps `data` (must be kPageSize bytes, and must outlive the view).
  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats the buffer as an empty page.
  void Initialize();

  /// Number of slots (including tombstones).
  uint16_t NumSlots() const;

  /// Live (non-tombstone) record count. Corrupt directories count 0.
  uint16_t NumRecords() const;

  /// Bytes available for a new record (accounting for its slot entry).
  /// A corrupt header yields 0, so inserts fail cleanly.
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits.
  bool HasRoomFor(size_t len) const;

  /// Inserts a record, returning its slot. Fails with CapacityExceeded if
  /// it does not fit, or Corruption if the header is malformed.
  Result<SlotId> Insert(std::string_view record);

  /// Returns the record bytes at `slot`, or NotFound for tombstones /
  /// out-of-range slots, or Corruption if the slot entry points outside
  /// the record area. The view is valid until the page is modified.
  Result<std::string_view> Get(SlotId slot) const;

  /// Tombstones `slot`. Space is not reclaimed (no compaction); the heap
  /// file treats pages as append-mostly, matching annotation workloads.
  Status Delete(SlotId slot);

 private:
  struct Header {
    uint16_t num_slots;
    uint16_t free_ptr;  // Offset of the byte past the last usable free byte.
  };
  struct Slot {
    uint16_t offset;
    uint16_t length;
  };
  static constexpr uint16_t kTombstone = 0xFFFF;
  static constexpr size_t kLayoutStart = kPageDataOffset;

  /// End of the slot directory for the header's current slot count, or 0
  /// if the directory cannot fit in the page (corrupt count).
  size_t DirectoryEnd() const;

  /// Non-OK if the header's slot count or free pointer are impossible.
  Status ValidateHeader() const;

  Header* header() { return reinterpret_cast<Header*>(data_ + kLayoutStart); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(data_ + kLayoutStart);
  }
  Slot* slot_array() {
    return reinterpret_cast<Slot*>(data_ + kLayoutStart + sizeof(Header));
  }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(data_ + kLayoutStart + sizeof(Header));
  }

  char* data_;
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_PAGE_H_
