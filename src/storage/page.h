// SlottedPage: classic variable-length-record page layout.
//
//   [ header | slot directory -> ...grows right | free | ...records grow left ]
//
// Header: {record count, free-space pointer}. Each slot holds {offset, len};
// a deleted record leaves a tombstone slot (offset = kTombstone) so slot ids
// stay stable, which lets RecordIds (page_id, slot) be permanent handles.

#ifndef INSIGHTNOTES_STORAGE_PAGE_H_
#define INSIGHTNOTES_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>

#include "common/result.h"
#include "storage/disk_manager.h"

namespace insightnotes::storage {

using SlotId = uint16_t;

/// View over a kPageSize buffer interpreted as a slotted page. Does not own
/// the buffer (the buffer pool does).
class SlottedPage {
 public:
  /// Wraps `data` (must be kPageSize bytes, and must outlive the view).
  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats the buffer as an empty page.
  void Initialize();

  /// Number of slots (including tombstones).
  uint16_t NumSlots() const;

  /// Live (non-tombstone) record count.
  uint16_t NumRecords() const;

  /// Bytes available for a new record (accounting for its slot entry).
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits.
  bool HasRoomFor(size_t len) const;

  /// Inserts a record, returning its slot. Fails with CapacityExceeded if it
  /// does not fit.
  Result<SlotId> Insert(std::string_view record);

  /// Returns the record bytes at `slot`, or NotFound for tombstones /
  /// out-of-range slots. The view is valid until the page is modified.
  Result<std::string_view> Get(SlotId slot) const;

  /// Tombstones `slot`. Space is not reclaimed (no compaction); the heap
  /// file treats pages as append-mostly, matching annotation workloads.
  Status Delete(SlotId slot);

 private:
  struct Header {
    uint16_t num_slots;
    uint16_t free_ptr;  // Offset of the byte past the last usable free byte.
  };
  struct Slot {
    uint16_t offset;
    uint16_t length;
  };
  static constexpr uint16_t kTombstone = 0xFFFF;

  Header* header() { return reinterpret_cast<Header*>(data_); }
  const Header* header() const { return reinterpret_cast<const Header*>(data_); }
  Slot* slot_array() { return reinterpret_cast<Slot*>(data_ + sizeof(Header)); }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(data_ + sizeof(Header));
  }

  char* data_;
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_PAGE_H_
