#include "storage/wal_segments.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <sstream>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

#include "common/logging.h"

namespace insightnotes::storage {

namespace fs = std::filesystem;

namespace {

Status FlushAndFsync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError("flush failed for '" + path + "': " + std::strerror(errno));
  }
#if defined(_WIN32)
  if (_commit(_fileno(file)) != 0) {
    return Status::IoError("commit-to-disk failed for '" + path + "'");
  }
#else
  if (::fsync(fileno(file)) != 0) {
    return Status::IoError("fsync failed for '" + path + "': " + std::strerror(errno));
  }
#endif
  return Status::OK();
}

std::string RenderManifest(uint64_t next_segment_id,
                           const std::vector<SegmentedWal::SegmentRef>& segments) {
  std::string text = "INWAL-MANIFEST 1\n";
  text += "next " + std::to_string(next_segment_id) + "\n";
  for (const SegmentedWal::SegmentRef& s : segments) {
    text += "segment " + std::to_string(s.id) + " " + std::to_string(s.records) + "\n";
  }
  return text;
}

/// Atomically replaces the manifest at `manifest_path` with `text` via
/// temp file + fsync + rename + parent-directory fsync. `fault` is the
/// crash seam; pass a no-op outside tests.
Status WriteManifestFile(const std::string& manifest_path, const std::string& text,
                         const std::function<Status(const char*)>& fault) {
  const std::string tmp = manifest_path + ".tmp";
  INSIGHTNOTES_RETURN_IF_ERROR(fault("manifest_temp"));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL manifest temp '" + tmp +
                           "': " + std::strerror(errno));
  }
  if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("cannot write WAL manifest temp '" + tmp + "'");
  }
  if (Status s = fault("manifest_fsync"); !s.ok()) {
    std::fclose(f);
    return s;
  }
  if (Status synced = FlushAndFsync(f, tmp); !synced.ok()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot close WAL manifest temp '" + tmp + "'");
  }
  if (Status s = fault("manifest_rename"); !s.ok()) return s;
  if (std::rename(tmp.c_str(), manifest_path.c_str()) != 0) {
    Status renamed = Status::IoError("cannot swap WAL manifest into '" +
                                     manifest_path + "': " + std::strerror(errno));
    std::remove(tmp.c_str());
    return renamed;
  }
  if (Status s = fault("manifest_dir_fsync"); !s.ok()) return s;
  return FsyncDirOf(manifest_path);
}

Status NoFault(const char*) { return Status::OK(); }

Result<SegmentedWal::Manifest> ParseManifest(const std::string& manifest_path,
                                             const std::string& base) {
  std::FILE* f = std::fopen(manifest_path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL manifest '" + manifest_path + "'");
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  SegmentedWal::Manifest out;
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line) || line != "INWAL-MANIFEST 1") {
    return Status::Corruption("'" + manifest_path +
                              "' is not an InsightNotes WAL manifest");
  }
  bool have_next = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "next") {
      if (!(fields >> out.next_segment_id)) {
        return Status::Corruption("bad 'next' line in WAL manifest '" +
                                  manifest_path + "'");
      }
      have_next = true;
    } else if (keyword == "segment") {
      SegmentedWal::SegmentRef ref;
      if (!(fields >> ref.id >> ref.records)) {
        return Status::Corruption("bad 'segment' line in WAL manifest '" +
                                  manifest_path + "'");
      }
      ref.path = SegmentedWal::SegmentPathFor(base, ref.id);
      out.segments.push_back(std::move(ref));
    } else {
      return Status::Corruption("unknown keyword '" + keyword +
                                "' in WAL manifest '" + manifest_path + "'");
    }
  }
  if (!have_next || out.segments.empty()) {
    return Status::Corruption("WAL manifest '" + manifest_path +
                              "' lists no segments");
  }
  return out;
}

/// True if `name` is a segment file of `base_name` ("<base_name>.NNNNNN").
bool IsSegmentFileName(const std::string& base_name, const std::string& name) {
  if (name.size() < base_name.size() + 7) return false;
  if (name.compare(0, base_name.size(), base_name) != 0) return false;
  if (name[base_name.size()] != '.') return false;
  for (size_t i = base_name.size() + 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

}  // namespace

std::string SegmentedWal::SegmentPathFor(const std::string& base, uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu", static_cast<unsigned long long>(id));
  return base + "." + buf;
}

std::string SegmentedWal::ManifestPathFor(const std::string& base) {
  return base + ".manifest";
}

SegmentedWal::~SegmentedWal() {
  Status s = Close();
  if (!s.ok()) {
    INSIGHTNOTES_LOG(Error) << "SegmentedWal::Close failed in destructor: "
                            << s.ToString();
  }
}

Result<SegmentedWal::Manifest> SegmentedWal::LoadForReplay(const std::string& base) {
  const std::string manifest_path = ManifestPathFor(base);
  std::error_code ec;
  // Crash leftovers: a half-written manifest swap and the single-file-era
  // rewrite temp are never part of the durable state.
  fs::remove(manifest_path + ".tmp", ec);
  fs::remove(base + ".compact", ec);

  Manifest out;
  if (!fs::exists(manifest_path, ec)) {
    const std::string first = SegmentPathFor(base, 1);
    if (fs::exists(base, ec)) {
      // Legacy single-file log: adopt it as segment 1. The rename is made
      // durable before the manifest references it; a crash in between
      // leaves the segment file with no manifest, which the branch below
      // picks up on the next open.
      std::error_code rename_ec;
      fs::rename(base, first, rename_ec);
      if (rename_ec) {
        return Status::IoError("cannot migrate legacy WAL '" + base +
                               "' to segment 1: " + rename_ec.message());
      }
      INSIGHTNOTES_RETURN_IF_ERROR(FsyncDirOf(first));
    }
    if (!fs::exists(first, ec)) return out;  // Nothing on disk: empty log.
    out.next_segment_id = 2;
    out.segments.push_back(SegmentRef{1, first, 0});
    INSIGHTNOTES_RETURN_IF_ERROR(WriteManifestFile(
        manifest_path, RenderManifest(out.next_segment_id, out.segments), NoFault));
  } else {
    INSIGHTNOTES_ASSIGN_OR_RETURN(out, ParseManifest(manifest_path, base));
  }

  // Remove orphaned segment files: written by a rotation or compaction the
  // manifest swap never committed. They are unreferenced, and their ids may
  // be reused once `next` rolls back with the old manifest.
  const fs::path base_path(base);
  const std::string base_name = base_path.filename().string();
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code iter_ec;
  for (const auto& entry : fs::directory_iterator(dir, iter_ec)) {
    const std::string name = entry.path().filename().string();
    if (!IsSegmentFileName(base_name, name)) continue;
    bool referenced = false;
    for (const SegmentRef& ref : out.segments) {
      if (fs::path(ref.path).filename().string() == name) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      INSIGHTNOTES_LOG(Warning) << "recovery: removing orphaned WAL segment '"
                                << entry.path().string() << "'";
      fs::remove(entry.path(), ec);
    }
  }
  return out;
}

Status SegmentedWal::Open(const std::string& base, bool truncate,
                          uint64_t active_keep_bytes, uint64_t active_records,
                          Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_ != nullptr) return Status::Internal("segmented WAL already open");
  base_ = base;
  options_ = options;
  crashed_ = false;
  num_appended_ = 0;
  segments_.clear();

  Manifest manifest;
  bool fresh = truncate;
  if (truncate) {
    // Wipe any previous incarnation: manifest, temp, legacy file, segments.
    std::error_code ec;
    fs::remove(ManifestPathFor(base_), ec);
    fs::remove(ManifestPathFor(base_) + ".tmp", ec);
    fs::remove(base_, ec);
    const fs::path base_path(base_);
    const std::string base_name = base_path.filename().string();
    fs::path dir = base_path.parent_path();
    if (dir.empty()) dir = ".";
    std::error_code iter_ec;
    for (const auto& entry : fs::directory_iterator(dir, iter_ec)) {
      if (IsSegmentFileName(base_name, entry.path().filename().string())) {
        fs::remove(entry.path(), ec);
      }
    }
  } else {
    INSIGHTNOTES_ASSIGN_OR_RETURN(manifest, LoadForReplay(base_));
    fresh = manifest.segments.empty();
  }

  if (fresh) {
    next_segment_id_ = 1;
    const uint64_t id = next_segment_id_++;
    const std::string path = SegmentPathFor(base_, id);
    active_ = std::make_unique<WriteAheadLog>();
    INSIGHTNOTES_RETURN_IF_ERROR(active_->Open(path, /*truncate=*/true));
    INSIGHTNOTES_RETURN_IF_ERROR(active_->Sync());
    INSIGHTNOTES_RETURN_IF_ERROR(FsyncDirOf(path));
    segments_.push_back(Segment{id, path, 0, {}});
    return WriteManifestLocked();
  }

  next_segment_id_ = manifest.next_segment_id;
  for (const SegmentRef& ref : manifest.segments) {
    segments_.push_back(Segment{ref.id, ref.path, ref.records, {}});
  }
  // The manifest's count for the active (last) segment is advisory; the
  // caller's replay just counted the records that actually survive.
  segments_.back().records = active_records;
  active_ = std::make_unique<WriteAheadLog>();
  return active_->Open(segments_.back().path, /*truncate=*/false, active_keep_bytes);
}

Status SegmentedWal::Fault(const char* op) {
  if (!fault_hook_) return Status::OK();
  Status s = fault_hook_(op);
  if (!s.ok()) crashed_ = true;
  return s;
}

void SegmentedWal::SetFaultHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_hook_ = std::move(hook);
}

Status SegmentedWal::WriteManifestLocked() {
  return WriteManifestFile(
      ManifestPathFor(base_),
      RenderManifest(next_segment_id_,
                     [&] {
                       std::vector<SegmentRef> refs;
                       refs.reserve(segments_.size());
                       for (const Segment& s : segments_) {
                         refs.push_back(SegmentRef{s.id, s.path, s.records});
                       }
                       return refs;
                     }()),
      [this](const char* op) { return Fault(op); });
}

Result<WalRecordPos> SegmentedWal::Append(std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ == nullptr) return Status::Internal("segmented WAL not open");
    if (crashed_) {
      return Status::IoError("segmented WAL '" + base_ +
                             "' failed after a simulated crash");
    }
  }
  INSIGHTNOTES_RETURN_IF_ERROR(active_->Append(payload));
  std::lock_guard<std::mutex> lock(mutex_);
  Segment& seg = segments_.back();
  WalRecordPos pos{seg.id, static_cast<uint32_t>(seg.records)};
  ++seg.records;
  ++num_appended_;
  return pos;
}

Status SegmentedWal::Sync() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ == nullptr) return Status::Internal("segmented WAL not open");
    if (crashed_) {
      return Status::IoError("segmented WAL '" + base_ +
                             "' failed after a simulated crash");
    }
  }
  return active_->Sync();
}

Result<SegmentedWal::Mark> SegmentedWal::MarkPos() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_ == nullptr) return Status::Internal("segmented WAL not open");
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t offset, active_->AppendOffset());
  return Mark{offset, segments_.back().records};
}

Status SegmentedWal::TruncateTo(const Mark& mark) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ == nullptr) return Status::Internal("segmented WAL not open");
  }
  INSIGHTNOTES_RETURN_IF_ERROR(active_->TruncateTo(mark.offset));
  std::lock_guard<std::mutex> lock(mutex_);
  Segment& seg = segments_.back();
  seg.records = mark.records;
  // Rolled-back records can no longer be superseded; drop any marks on them.
  for (auto it = seg.dead.begin(); it != seg.dead.end();) {
    it = *it >= mark.records ? seg.dead.erase(it) : std::next(it);
  }
  return Status::OK();
}

Status SegmentedWal::MaybeRotate() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ == nullptr) return Status::Internal("segmented WAL not open");
    if (crashed_) {
      return Status::IoError("segmented WAL '" + base_ +
                             "' failed after a simulated crash");
    }
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t offset, active_->AppendOffset());
  if (offset < options_.segment_bytes) return Status::OK();

  // Seal: every record of the outgoing segment must be durable before the
  // manifest freezes its count.
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("rotate_sync"));
  INSIGHTNOTES_RETURN_IF_ERROR(active_->Sync());

  uint64_t new_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    new_id = next_segment_id_++;
  }
  const std::string new_path = SegmentPathFor(base_, new_id);
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("rotate_create"));
  auto fresh = std::make_unique<WriteAheadLog>();
  INSIGHTNOTES_RETURN_IF_ERROR(fresh->Open(new_path, /*truncate=*/true));
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("rotate_seg_fsync"));
  INSIGHTNOTES_RETURN_IF_ERROR(fresh->Sync());
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("rotate_dir_fsync"));
  INSIGHTNOTES_RETURN_IF_ERROR(FsyncDirOf(new_path));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    segments_.push_back(Segment{new_id, new_path, 0, {}});
    Status manifest = WriteManifestLocked();
    if (!manifest.ok()) {
      segments_.pop_back();
      if (!crashed_) {
        // Real I/O failure (not a simulated kill): the new file is an
        // unreferenced orphan; remove it and stay on the old active.
        std::remove(new_path.c_str());
      }
      return manifest;
    }
  }
  Status closed = active_->Close();
  active_ = std::move(fresh);
  return closed;
}

void SegmentedWal::MarkDead(uint64_t segment_id, uint32_t record_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Segment& seg : segments_) {
    if (seg.id != segment_id) continue;
    if (record_index < seg.records) seg.dead.insert(record_index);
    return;
  }
  // Unknown segment: retired by compaction after the caller captured the
  // position. The record was copied forward as live; skipping the mark only
  // makes compaction conservative.
}

Result<SegmentedWal::CompactionResult> SegmentedWal::CompactOnce() {
  Segment candidate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ == nullptr) return Status::Internal("segmented WAL not open");
    if (crashed_) {
      return Status::IoError("segmented WAL '" + base_ +
                             "' failed after a simulated crash");
    }
    double best = 0.0;
    bool found = false;
    for (size_t i = 0; i + 1 < segments_.size(); ++i) {
      const Segment& s = segments_[i];
      if (s.records == 0 || s.dead.empty()) continue;
      double ratio = static_cast<double>(s.dead.size()) / static_cast<double>(s.records);
      bool eligible = ratio >= options_.compact_min_dead_ratio ||
                      s.dead.size() == s.records;
      if (eligible && ratio > best) {
        best = ratio;
        candidate = s;  // Copies the dead-set snapshot.
        found = true;
      }
    }
    if (!found) return CompactionResult{};
  }

  // Read the live records. The segment is sealed (fsynced before the
  // manifest froze it), so a torn tail or short count here is corruption,
  // not a crash artifact.
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("compact_read"));
  std::vector<std::string> live;
  live.reserve(candidate.records - candidate.dead.size());
  uint32_t index = 0;
  INSIGHTNOTES_ASSIGN_OR_RETURN(
      WriteAheadLog::ReplayStats stats,
      WriteAheadLog::Replay(candidate.path, [&](std::string_view payload) {
        if (candidate.dead.find(index) == candidate.dead.end()) {
          live.emplace_back(payload);
        }
        ++index;
        return Status::OK();
      }));
  if (stats.truncated_bytes > 0 || stats.records != candidate.records) {
    return Status::Corruption("sealed WAL segment '" + candidate.path +
                              "' is torn or short (" + std::to_string(stats.records) +
                              " of " + std::to_string(candidate.records) +
                              " records readable)");
  }

  CompactionResult result;
  result.compacted = true;
  result.segment_id = candidate.id;
  result.live_records = live.size();
  result.dead_records = candidate.dead.size();

  std::string new_path;
  if (!live.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      result.new_segment_id = next_segment_id_++;
    }
    new_path = SegmentPathFor(base_, result.new_segment_id);
    auto abandon = [&](Status status) {
      if (!crashed_) std::remove(new_path.c_str());
      return status;
    };
    INSIGHTNOTES_RETURN_IF_ERROR(Fault("compact_create"));
    WriteAheadLog out;
    if (Status opened = out.Open(new_path, /*truncate=*/true); !opened.ok()) {
      return abandon(opened);
    }
    for (const std::string& payload : live) {
      if (Status f = Fault("compact_write"); !f.ok()) return f;
      if (Status appended = out.Append(payload); !appended.ok()) {
        out.Close().ok();
        return abandon(appended);
      }
    }
    if (Status f = Fault("compact_fsync"); !f.ok()) return f;
    if (Status synced = out.Sync(); !synced.ok()) {
      out.Close().ok();
      return abandon(synced);
    }
    if (Status closed = out.Close(); !closed.ok()) return abandon(closed);
    if (Status f = Fault("compact_dir_fsync"); !f.ok()) return f;
    if (Status synced_dir = FsyncDirOf(new_path); !synced_dir.ok()) {
      return abandon(synced_dir);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Re-locate by id: a concurrent rotation may have shifted positions.
    // Only this (single) compaction call removes segments, so it is there.
    size_t idx = segments_.size();
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i].id == candidate.id) {
        idx = i;
        break;
      }
    }
    if (idx == segments_.size()) {
      return Status::Internal("compaction candidate segment vanished");
    }
    Segment replaced = std::move(segments_[idx]);
    if (live.empty()) {
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(idx));
    } else {
      segments_[idx] =
          Segment{result.new_segment_id, new_path,
                  static_cast<uint64_t>(live.size()), {}};
    }
    Status manifest = WriteManifestLocked();
    if (!manifest.ok()) {
      // Restore the in-memory list so the next call retries this segment.
      if (live.empty()) {
        segments_.insert(segments_.begin() + static_cast<ptrdiff_t>(idx),
                         std::move(replaced));
      } else {
        segments_[idx] = std::move(replaced);
      }
      if (!crashed_ && !new_path.empty()) std::remove(new_path.c_str());
      return manifest;
    }
  }

  // The manifest no longer references the retired file; remove it. A crash
  // before the remove leaves an orphan for the next open's cleanup.
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("retire_remove"));
  std::remove(candidate.path.c_str());
  INSIGHTNOTES_RETURN_IF_ERROR(Fault("retire_dir_fsync"));
  INSIGHTNOTES_RETURN_IF_ERROR(FsyncDirOf(candidate.path));
  return result;
}

Status SegmentedWal::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status result = Status::OK();
  if (active_ != nullptr) {
    result = active_->Close();
    active_.reset();
  }
  return result;
}

bool SegmentedWal::is_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_ != nullptr;
}

bool SegmentedWal::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_ || (active_ != nullptr && active_->failed());
}

uint64_t SegmentedWal::num_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_appended_;
}

size_t SegmentedWal::num_segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

std::vector<SegmentedWal::SegmentStats> SegmentedWal::Segments() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SegmentStats> out;
  out.reserve(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    out.push_back(SegmentStats{s.id, s.records, s.dead.size(),
                               i + 1 == segments_.size()});
  }
  return out;
}

Result<uint64_t> SegmentedWal::TotalBytes() const {
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Segment& s : segments_) paths.push_back(s.path);
    paths.push_back(ManifestPathFor(base_));
  }
  uint64_t total = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    uint64_t size = fs::file_size(path, ec);
    if (!ec) total += size;
  }
  return total;
}

}  // namespace insightnotes::storage
