// BufferPool: a fixed set of in-memory frames caching disk pages, with LRU
// replacement, pin counts and dirty-page write-back. Heap files and the
// zoom-in result cache sit on top of this.

#ifndef INSIGHTNOTES_STORAGE_BUFFER_POOL_H_
#define INSIGHTNOTES_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/io_retry.h"

namespace insightnotes::storage {

class BufferPool;

/// RAII pin on a buffered page. Unpins (and marks dirty if written) on
/// destruction. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId page_id, char* data);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return data_ != nullptr; }
  PageId page_id() const { return page_id_; }

  /// Read-only view of the page bytes.
  const char* data() const { return data_; }

  /// Mutable view; marks the page dirty.
  char* MutableData() {
    dirty_ = true;
    return data_;
  }

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// LRU buffer pool over a DiskManager. Thread-safe: one internal mutex
/// guards the page table, pin counts, LRU list and eviction (disk I/O for
/// misses and dirty write-back happens under it too — the pool serializes
/// I/O, concurrency comes from hits on already-resident pages being short
/// critical sections). Page *bytes* are accessed outside the mutex through
/// PageGuard, which is safe because pinned frames are never evicted;
/// concurrent readers/writers of the same page must synchronize above the
/// pool (heap files hold a per-file latch across page access).
class BufferPool {
 public:
  /// `capacity` is the number of frames. The pool does not own `disk`.
  /// `retry` governs transient-IoError retries around every disk access.
  BufferPool(DiskManager* disk, size_t capacity, IoRetryPolicy retry = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins it (zero-filled).
  Result<PageGuard> NewPage();

  /// Pins page `id` zero-filled WITHOUT reading it from disk, for callers
  /// recycling an already-allocated page whose on-disk bytes are garbage
  /// (e.g. a B+-tree free-list page torn by a crash): a read would trip the
  /// checksum. The frame is dirty afterwards.
  Result<PageGuard> InitPage(PageId id);

  /// Writes back all dirty frames. A failed write does not stop the sweep:
  /// remaining dirty frames are still flushed, the failed frames stay dirty
  /// for a later retry, and the first error is returned.
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  void Unpin(PageId id, bool dirty);

  /// Finds a frame for `id`, evicting an unpinned LRU victim if needed.
  Result<size_t> GetFrameFor(PageId id, bool read_from_disk);

  void TouchLru(size_t frame_index);

  DiskManager* disk_;
  size_t capacity_;
  IoRetryPolicy retry_;
  // Guards every member below (and the DiskManager calls made while held).
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  // Front = most recently used. Holds frame indices of resident pages.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_BUFFER_POOL_H_
