#include "storage/fault_injection.h"

#include <algorithm>
#include <string>

namespace insightnotes::storage {

namespace {

bool OpMatches(IoOpKind scripted, IoOpKind actual) {
  return scripted == IoOpKind::kAny || scripted == actual;
}

}  // namespace

void FaultInjectingDiskManager::FailOnceAt(IoOpKind kind, uint64_t at) {
  std::lock_guard<std::mutex> lock(faults_mutex_);
  faults_.push_back({ScriptedFault::Kind::kTransient, kind, at, 0});
}

void FaultInjectingDiskManager::TearWriteAt(uint64_t at, size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(faults_mutex_);
  faults_.push_back(
      {ScriptedFault::Kind::kTorn, IoOpKind::kWrite, at, std::min(keep_bytes, kPageSize)});
}

void FaultInjectingDiskManager::CrashAtOp(uint64_t at) {
  crash_at_.store(at, std::memory_order_relaxed);
}

void FaultInjectingDiskManager::Reset() {
  {
    std::lock_guard<std::mutex> lock(faults_mutex_);
    faults_.clear();
  }
  crash_at_.store(UINT64_MAX, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
}

std::optional<FaultInjectingDiskManager::ScriptedFault>
FaultInjectingDiskManager::Match(IoOpKind op, uint64_t index) {
  std::lock_guard<std::mutex> lock(faults_mutex_);
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->at == index && OpMatches(it->op, op)) {
      ScriptedFault fault = *it;
      faults_.erase(it);
      return fault;
    }
  }
  return std::nullopt;
}

Status FaultInjectingDiskManager::ClaimOp(uint64_t* index) {
  *index = op_count_.fetch_add(1, std::memory_order_relaxed);
  if (*index >= crash_at_.load(std::memory_order_relaxed)) {
    crashed_.store(true, std::memory_order_relaxed);
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("simulated crash at op " + std::to_string(*index));
  }
  return Status::OK();
}

Status FaultInjectingDiskManager::ReadPage(PageId id, char* out) {
  uint64_t index;
  INSIGHTNOTES_RETURN_IF_ERROR(ClaimOp(&index));
  if (Match(IoOpKind::kRead, index).has_value()) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected transient read error at op " +
                           std::to_string(index));
  }
  return DiskManager::ReadPage(id, out);
}

Status FaultInjectingDiskManager::WritePage(PageId id, const char* data) {
  uint64_t index;
  INSIGHTNOTES_RETURN_IF_ERROR(ClaimOp(&index));
  if (std::optional<ScriptedFault> fault = Match(IoOpKind::kWrite, index);
      fault.has_value()) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    if (fault->kind == ScriptedFault::Kind::kTorn) {
      // Persist a prefix of the correctly-stamped image: the stored
      // checksum covers bytes the tear never wrote, so the page reads back
      // as Corruption.
      char stamped[kPageSize];
      StampChecksum(data, stamped);
      WriteRaw(id, stamped, fault->keep_bytes).ok();  // Best effort, like a torn device.
      return Status::IoError("injected torn write at op " + std::to_string(index));
    }
    return Status::IoError("injected transient write error at op " +
                           std::to_string(index));
  }
  return DiskManager::WritePage(id, data);
}

Status FaultInjectingDiskManager::Fsync() {
  if (crashed_.load(std::memory_order_relaxed) ||
      op_count_.load(std::memory_order_relaxed) >=
          crash_at_.load(std::memory_order_relaxed)) {
    crashed_.store(true, std::memory_order_relaxed);
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("simulated crash during fsync");
  }
  return DiskManager::Fsync();
}

Status FaultInjectingDiskManager::FsyncDir(const std::string& dir_path) {
  uint64_t index;
  INSIGHTNOTES_RETURN_IF_ERROR(ClaimOp(&index));
  if (Match(IoOpKind::kDirFsync, index).has_value()) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected transient directory-fsync error at op " +
                           std::to_string(index));
  }
  return DiskManager::FsyncDir(dir_path);
}

}  // namespace insightnotes::storage
