#include "storage/fault_injection.h"

#include <algorithm>
#include <string>

namespace insightnotes::storage {

namespace {

bool OpMatches(IoOpKind scripted, IoOpKind actual) {
  return scripted == IoOpKind::kAny || scripted == actual;
}

}  // namespace

void FaultInjectingDiskManager::FailOnceAt(IoOpKind kind, uint64_t at) {
  faults_.push_back({ScriptedFault::Kind::kTransient, kind, at, 0});
}

void FaultInjectingDiskManager::TearWriteAt(uint64_t at, size_t keep_bytes) {
  faults_.push_back(
      {ScriptedFault::Kind::kTorn, IoOpKind::kWrite, at, std::min(keep_bytes, kPageSize)});
}

void FaultInjectingDiskManager::CrashAtOp(uint64_t at) { crash_at_ = at; }

void FaultInjectingDiskManager::Reset() {
  faults_.clear();
  crash_at_ = UINT64_MAX;
  crashed_ = false;
}

const FaultInjectingDiskManager::ScriptedFault* FaultInjectingDiskManager::Match(
    IoOpKind op, uint64_t index) {
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->at == index && OpMatches(it->op, op)) {
      matched_ = *it;
      faults_.erase(it);
      return &matched_;
    }
  }
  return nullptr;
}

Status FaultInjectingDiskManager::ReadPage(PageId id, char* out) {
  uint64_t index = op_count_++;
  if (index >= crash_at_) {
    crashed_ = true;
    ++faults_injected_;
    return Status::IoError("simulated crash at op " + std::to_string(index));
  }
  if (const ScriptedFault* fault = Match(IoOpKind::kRead, index); fault != nullptr) {
    ++faults_injected_;
    return Status::IoError("injected transient read error at op " +
                           std::to_string(index));
  }
  return DiskManager::ReadPage(id, out);
}

Status FaultInjectingDiskManager::WritePage(PageId id, const char* data) {
  uint64_t index = op_count_++;
  if (index >= crash_at_) {
    crashed_ = true;
    ++faults_injected_;
    return Status::IoError("simulated crash at op " + std::to_string(index));
  }
  if (const ScriptedFault* fault = Match(IoOpKind::kWrite, index); fault != nullptr) {
    ++faults_injected_;
    if (fault->kind == ScriptedFault::Kind::kTorn) {
      // Persist a prefix of the correctly-stamped image: the stored
      // checksum covers bytes the tear never wrote, so the page reads back
      // as Corruption.
      char stamped[kPageSize];
      StampChecksum(data, stamped);
      WriteRaw(id, stamped, fault->keep_bytes).ok();  // Best effort, like a torn device.
      return Status::IoError("injected torn write at op " + std::to_string(index));
    }
    return Status::IoError("injected transient write error at op " +
                           std::to_string(index));
  }
  return DiskManager::WritePage(id, data);
}

Status FaultInjectingDiskManager::Fsync() {
  if (crashed_ || op_count_ >= crash_at_) {
    crashed_ = true;
    ++faults_injected_;
    return Status::IoError("simulated crash during fsync");
  }
  return DiskManager::Fsync();
}

}  // namespace insightnotes::storage
