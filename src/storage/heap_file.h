// HeapFile: an unordered collection of variable-length records stored in
// slotted pages through the buffer pool. Records larger than a page spill
// into overflow-page chains (annotation attachments can be multi-KB
// documents). RecordIds (page, slot) are stable handles.

#ifndef INSIGHTNOTES_STORAGE_HEAP_FILE_H_
#define INSIGHTNOTES_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace insightnotes::storage {

struct RecordId {
  PageId page = kInvalidPageId;
  SlotId slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  friend bool operator==(const RecordId&, const RecordId&) = default;
};

/// Heap file over a shared buffer pool. Multiple heap files may share one
/// pool/disk (each tracks its own page list). Thread-safe: a per-file
/// shared_mutex is held across page-byte access — exclusively by mutators
/// (Append/Delete rewrite slot directories), shared by Get/Scan — so
/// readers never observe a half-written slot. Lock order is file latch →
/// pool mutex (the latch is acquired before any FetchPage/NewPage call).
class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record, returning its stable id.
  Result<RecordId> Append(std::string_view record);

  /// Reads the record at `rid` (resolving overflow chains).
  Result<std::string> Get(const RecordId& rid) const;

  /// Tombstones the record at `rid`. Overflow pages are not reclaimed.
  Status Delete(const RecordId& rid);

  /// Invokes `fn(rid, bytes)` for every live record in storage order.
  /// Iteration stops early if `fn` returns false.
  Status Scan(const std::function<bool(const RecordId&, std::string_view)>& fn) const;

  uint64_t num_records() const {
    return num_records_.load(std::memory_order_relaxed);
  }
  size_t num_data_pages() const {
    std::shared_lock<std::shared_mutex> lock(latch_);
    return pages_.size();
  }

 private:
  // Every in-page payload starts with a tag byte distinguishing an inline
  // record from a spilled-record stub:
  //   inline:   [kInlineTag] [record bytes]
  //   overflow: [kOverflowTag] [total_len (u32)] [first overflow page (u32)]
  static constexpr char kInlineTag = 0;
  static constexpr char kOverflowTag = 1;
  // Records at or below this length are stored inline.
  static constexpr size_t kMaxInlineRecord = kPageSize - 64;

  struct OverflowHeader {
    PageId next;
    uint32_t length;  // Payload bytes in this page.
  };
  // Overflow pages reserve the disk layer's checksum word like every page.
  static constexpr size_t kOverflowPayload =
      kPageSize - kPageDataOffset - sizeof(OverflowHeader);

  Result<RecordId> AppendInline(std::string_view record);
  Result<RecordId> AppendOverflow(std::string_view record);
  Result<std::string> ReadOverflow(std::string_view stub) const;

  BufferPool* pool_;
  // Guards pages_ and all slot-directory bytes this file touches.
  mutable std::shared_mutex latch_;
  std::vector<PageId> pages_;  // Data pages in append order.
  std::atomic<uint64_t> num_records_{0};
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_HEAP_FILE_H_
