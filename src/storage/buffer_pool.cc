#include "storage/buffer_pool.h"

#include <cstring>

namespace insightnotes::storage {

PageGuard::PageGuard(BufferPool* pool, PageId page_id, char* data)
    : pool_(pool), page_id_(page_id), data_(data) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), page_id_(other.page_id_), data_(other.data_), dirty_(other.dirty_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Unpin(page_id_, dirty_);
  }
  pool_ = nullptr;
  data_ = nullptr;
  dirty_ = false;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity, IoRetryPolicy retry)
    : disk_(disk), capacity_(capacity), retry_(std::move(retry)) {
  frames_.resize(capacity_);
  for (Frame& f : frames_) {
    f.data = std::make_unique<char[]>(kPageSize);
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    TouchLru(it->second);
    return PageGuard(this, id, frame.data.get());
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, GetFrameFor(id, /*read_from_disk=*/true));
  Frame& frame = frames_[index];
  ++frame.pin_count;
  TouchLru(index);
  return PageGuard(this, id, frame.data.get());
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mutex_);
  PageId id = kInvalidPageId;
  INSIGHTNOTES_RETURN_IF_ERROR(RetryIo(retry_, [&]() -> Status {
    Result<PageId> allocated = disk_->AllocatePage();
    if (!allocated.ok()) return allocated.status();
    id = *allocated;
    return Status::OK();
  }));
  INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, GetFrameFor(id, /*read_from_disk=*/false));
  Frame& frame = frames_[index];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.dirty = true;
  ++frame.pin_count;
  TouchLru(index);
  return PageGuard(this, id, frame.data.get());
}

Result<PageGuard> BufferPool::InitPage(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  size_t index;
  if (it != page_table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    index = it->second;
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    INSIGHTNOTES_ASSIGN_OR_RETURN(index,
                                  GetFrameFor(id, /*read_from_disk=*/false));
  }
  Frame& frame = frames_[index];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.dirty = true;
  ++frame.pin_count;
  TouchLru(index);
  return PageGuard(this, id, frame.data.get());
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status first_error = Status::OK();
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      Status written = RetryIo(
          retry_, [&] { return disk_->WritePage(frame.page_id, frame.data.get()); });
      if (written.ok()) {
        frame.dirty = false;
      } else if (first_error.ok()) {
        first_error = written;  // Frame stays dirty for a later retry.
      }
    }
  }
  return first_error;
}

void BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  if (frame.pin_count > 0) --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
}

// Called with mutex_ held.
Result<size_t> BufferPool::GetFrameFor(PageId id, bool read_from_disk) {
  size_t index;
  if (page_table_.size() < capacity_) {
    // A free frame exists: first frame not in use.
    index = page_table_.size();
    // Frames are handed out densely until the pool is full, but after
    // evictions the "dense" assumption breaks, so scan for a truly free one.
    if (frames_[index].page_id != kInvalidPageId) {
      index = capacity_;  // Force the scan below.
      for (size_t i = 0; i < capacity_; ++i) {
        if (frames_[i].page_id == kInvalidPageId) {
          index = i;
          break;
        }
      }
      if (index == capacity_) return Status::Internal("buffer pool bookkeeping error");
    }
  } else {
    // Evict the least recently used unpinned frame.
    size_t victim = capacity_;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      if (frames_[*rit].pin_count == 0) {
        victim = *rit;
        break;
      }
    }
    if (victim == capacity_) {
      return Status::CapacityExceeded("all buffer pool frames are pinned");
    }
    Frame& evicted = frames_[victim];
    if (evicted.dirty) {
      INSIGHTNOTES_RETURN_IF_ERROR(RetryIo(
          retry_, [&] { return disk_->WritePage(evicted.page_id, evicted.data.get()); }));
    }
    page_table_.erase(evicted.page_id);
    lru_.erase(lru_pos_[victim]);
    lru_pos_.erase(victim);
    evicted.page_id = kInvalidPageId;
    evicted.dirty = false;
    index = victim;
  }

  Frame& frame = frames_[index];
  frame.pin_count = 0;
  frame.dirty = false;
  if (read_from_disk) {
    Status read = RetryIo(retry_, [&] { return disk_->ReadPage(id, frame.data.get()); });
    if (!read.ok()) {
      // Leave the frame free (not claimed for `id`) so a failed read does
      // not leak it out of the pool.
      frame.page_id = kInvalidPageId;
      return read;
    }
  }
  frame.page_id = id;
  page_table_[id] = index;
  return index;
}

void BufferPool::TouchLru(size_t frame_index) {
  auto it = lru_pos_.find(frame_index);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
  }
  lru_.push_front(frame_index);
  lru_pos_[frame_index] = lru_.begin();
}

}  // namespace insightnotes::storage
