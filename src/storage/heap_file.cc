#include "storage/heap_file.h"

#include <cstring>

namespace insightnotes::storage {

Result<RecordId> HeapFile::Append(std::string_view record) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  if (record.size() > kMaxInlineRecord) {
    return AppendOverflow(record);
  }
  std::string tagged;
  tagged.reserve(record.size() + 1);
  tagged.push_back(kInlineTag);
  tagged.append(record);
  return AppendInline(tagged);
}

// Called with latch_ held exclusively.
Result<RecordId> HeapFile::AppendInline(std::string_view record) {
  if (!pages_.empty()) {
    PageId last = pages_.back();
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(last));
    SlottedPage page(guard.MutableData());
    if (page.HasRoomFor(record.size())) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(SlotId slot, page.Insert(record));
      num_records_.fetch_add(1, std::memory_order_relaxed);
      return RecordId{last, slot};
    }
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
  SlottedPage page(guard.MutableData());
  page.Initialize();
  INSIGHTNOTES_ASSIGN_OR_RETURN(SlotId slot, page.Insert(record));
  pages_.push_back(guard.page_id());
  num_records_.fetch_add(1, std::memory_order_relaxed);
  return RecordId{guard.page_id(), slot};
}

Result<RecordId> HeapFile::AppendOverflow(std::string_view record) {
  // Write the chain back-to-front so each page knows its successor.
  PageId next = kInvalidPageId;
  // Chunk boundaries: the final chunk may be short; all chunks are written
  // front-to-back in the record but allocated back-to-front here.
  size_t num_chunks = (record.size() + kOverflowPayload - 1) / kOverflowPayload;
  for (size_t chunk = num_chunks; chunk-- > 0;) {
    size_t begin = chunk * kOverflowPayload;
    size_t len = std::min(kOverflowPayload, record.size() - begin);
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    char* data = guard.MutableData() + kPageDataOffset;
    OverflowHeader header{next, static_cast<uint32_t>(len)};
    std::memcpy(data, &header, sizeof(header));
    std::memcpy(data + sizeof(header), record.data() + begin, len);
    next = guard.page_id();
  }

  char stub[1 + sizeof(uint32_t) + sizeof(PageId)];
  stub[0] = kOverflowTag;
  auto total = static_cast<uint32_t>(record.size());
  std::memcpy(stub + 1, &total, sizeof(total));
  std::memcpy(stub + 1 + sizeof(total), &next, sizeof(next));
  return AppendInline(std::string_view(stub, sizeof(stub)));
}

Result<std::string> HeapFile::Get(const RecordId& rid) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page));
  SlottedPage page(const_cast<char*>(guard.data()));
  INSIGHTNOTES_ASSIGN_OR_RETURN(std::string_view bytes, page.Get(rid.slot));
  if (bytes.empty()) return Status::Internal("empty record payload");
  if (bytes[0] == kOverflowTag) return ReadOverflow(bytes);
  return std::string(bytes.substr(1));
}

// Called with latch_ held (shared or exclusive).
Result<std::string> HeapFile::ReadOverflow(std::string_view stub) const {
  if (stub.size() < 1 + sizeof(uint32_t) + sizeof(PageId)) {
    return Status::Corruption("overflow stub truncated to " +
                              std::to_string(stub.size()) + " bytes");
  }
  uint32_t total;
  PageId first;
  std::memcpy(&total, stub.data() + 1, sizeof(total));
  std::memcpy(&first, stub.data() + 1 + sizeof(total), sizeof(first));
  std::string out;
  out.reserve(total);
  PageId current = first;
  while (current != kInvalidPageId && out.size() < total) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(current));
    OverflowHeader header;
    std::memcpy(&header, guard.data() + kPageDataOffset, sizeof(header));
    // A corrupted chain page must not drive an OOB append or a loop that
    // never grows `out`.
    if (header.length == 0 || header.length > kOverflowPayload) {
      return Status::Corruption("overflow page " + std::to_string(current) +
                                " claims " + std::to_string(header.length) +
                                " payload bytes (max " +
                                std::to_string(kOverflowPayload) + ")");
    }
    out.append(guard.data() + kPageDataOffset + sizeof(header), header.length);
    current = header.next;
  }
  if (out.size() != total) {
    return Status::Internal("overflow chain truncated: expected " +
                            std::to_string(total) + " bytes, got " +
                            std::to_string(out.size()));
  }
  return out;
}

Status HeapFile::Delete(const RecordId& rid) {
  std::unique_lock<std::shared_mutex> lock(latch_);
  INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(rid.page));
  SlottedPage page(guard.MutableData());
  INSIGHTNOTES_RETURN_IF_ERROR(page.Delete(rid.slot));
  num_records_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<bool(const RecordId&, std::string_view)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  for (PageId page_id : pages_) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_id));
    SlottedPage page(const_cast<char*>(guard.data()));
    uint16_t num_slots = page.NumSlots();
    for (SlotId slot = 0; slot < num_slots; ++slot) {
      auto bytes = page.Get(slot);
      if (!bytes.ok()) continue;  // Tombstone.
      std::string materialized;
      std::string_view view = *bytes;
      if (view.empty()) return Status::Internal("empty record payload");
      if (view[0] == kOverflowTag) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(materialized, ReadOverflow(view));
        view = materialized;
      } else {
        view = view.substr(1);
      }
      if (!fn(RecordId{page_id, slot}, view)) return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace insightnotes::storage
