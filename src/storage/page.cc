#include "storage/page.h"

namespace insightnotes::storage {

void SlottedPage::Initialize() {
  std::memset(data_, 0, kPageSize);
  header()->num_slots = 0;
  header()->free_ptr = static_cast<uint16_t>(kPageSize);
}

uint16_t SlottedPage::NumSlots() const { return header()->num_slots; }

size_t SlottedPage::DirectoryEnd() const {
  size_t end = kLayoutStart + sizeof(Header) +
               sizeof(Slot) * static_cast<size_t>(header()->num_slots);
  return end <= kPageSize ? end : 0;
}

Status SlottedPage::ValidateHeader() const {
  size_t directory_end = DirectoryEnd();
  if (directory_end == 0) {
    return Status::Corruption("slot directory does not fit in page (count " +
                              std::to_string(header()->num_slots) + ")");
  }
  size_t free_ptr = header()->free_ptr;
  if (free_ptr > kPageSize || free_ptr < directory_end) {
    return Status::Corruption("free-space pointer " + std::to_string(free_ptr) +
                              " outside [" + std::to_string(directory_end) + ", " +
                              std::to_string(kPageSize) + "]");
  }
  return Status::OK();
}

uint16_t SlottedPage::NumRecords() const {
  if (DirectoryEnd() == 0) return 0;
  uint16_t live = 0;
  const Slot* slots = slot_array();
  for (uint16_t i = 0; i < header()->num_slots; ++i) {
    if (slots[i].offset != kTombstone) ++live;
  }
  return live;
}

size_t SlottedPage::FreeSpace() const {
  size_t directory_end = DirectoryEnd();
  if (directory_end == 0) return 0;
  size_t free_ptr = header()->free_ptr;
  if (free_ptr > kPageSize || free_ptr < directory_end) return 0;
  return free_ptr - directory_end;
}

bool SlottedPage::HasRoomFor(size_t len) const {
  return FreeSpace() >= len + sizeof(Slot);
}

Result<SlotId> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kPageSize) {
    return Status::InvalidArgument("record larger than a page");
  }
  INSIGHTNOTES_RETURN_IF_ERROR(ValidateHeader());
  if (!HasRoomFor(record.size())) {
    return Status::CapacityExceeded("page full");
  }
  uint16_t new_free = static_cast<uint16_t>(header()->free_ptr - record.size());
  std::memcpy(data_ + new_free, record.data(), record.size());
  SlotId slot = header()->num_slots;
  slot_array()[slot] = {new_free, static_cast<uint16_t>(record.size())};
  header()->num_slots = static_cast<uint16_t>(slot + 1);
  header()->free_ptr = new_free;
  return slot;
}

Result<std::string_view> SlottedPage::Get(SlotId slot) const {
  INSIGHTNOTES_RETURN_IF_ERROR(ValidateHeader());
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  const Slot& s = slot_array()[slot];
  if (s.offset == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot) + " deleted");
  }
  // Records live in [free_ptr, kPageSize); size_t math cannot overflow for
  // two uint16_t values.
  size_t begin = s.offset;
  size_t end = begin + s.length;
  if (begin < header()->free_ptr || end > kPageSize) {
    return Status::Corruption("slot " + std::to_string(slot) + " points at [" +
                              std::to_string(begin) + ", " + std::to_string(end) +
                              ") outside the record area");
  }
  return std::string_view(data_ + begin, s.length);
}

Status SlottedPage::Delete(SlotId slot) {
  INSIGHTNOTES_RETURN_IF_ERROR(ValidateHeader());
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  Slot& s = slot_array()[slot];
  if (s.offset == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot) + " already deleted");
  }
  s.offset = kTombstone;
  s.length = 0;
  return Status::OK();
}

}  // namespace insightnotes::storage
