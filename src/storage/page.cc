#include "storage/page.h"

namespace insightnotes::storage {

void SlottedPage::Initialize() {
  std::memset(data_, 0, kPageSize);
  header()->num_slots = 0;
  header()->free_ptr = static_cast<uint16_t>(kPageSize);
}

uint16_t SlottedPage::NumSlots() const { return header()->num_slots; }

uint16_t SlottedPage::NumRecords() const {
  uint16_t live = 0;
  const Slot* slots = slot_array();
  for (uint16_t i = 0; i < header()->num_slots; ++i) {
    if (slots[i].offset != kTombstone) ++live;
  }
  return live;
}

size_t SlottedPage::FreeSpace() const {
  size_t directory_end = sizeof(Header) + sizeof(Slot) * header()->num_slots;
  size_t free_ptr = header()->free_ptr;
  if (free_ptr < directory_end) return 0;
  return free_ptr - directory_end;
}

bool SlottedPage::HasRoomFor(size_t len) const {
  return FreeSpace() >= len + sizeof(Slot);
}

Result<SlotId> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kPageSize) {
    return Status::InvalidArgument("record larger than a page");
  }
  if (!HasRoomFor(record.size())) {
    return Status::CapacityExceeded("page full");
  }
  uint16_t new_free = static_cast<uint16_t>(header()->free_ptr - record.size());
  std::memcpy(data_ + new_free, record.data(), record.size());
  SlotId slot = header()->num_slots;
  slot_array()[slot] = {new_free, static_cast<uint16_t>(record.size())};
  header()->num_slots = static_cast<uint16_t>(slot + 1);
  header()->free_ptr = new_free;
  return slot;
}

Result<std::string_view> SlottedPage::Get(SlotId slot) const {
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  const Slot& s = slot_array()[slot];
  if (s.offset == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot) + " deleted");
  }
  return std::string_view(data_ + s.offset, s.length);
}

Status SlottedPage::Delete(SlotId slot) {
  if (slot >= header()->num_slots) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  Slot& s = slot_array()[slot];
  if (s.offset == kTombstone) {
    return Status::NotFound("slot " + std::to_string(slot) + " already deleted");
  }
  s.offset = kTombstone;
  s.length = 0;
  return Status::OK();
}

}  // namespace insightnotes::storage
