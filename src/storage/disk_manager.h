// DiskManager: page-granular I/O over a single database file. Pages are
// fixed-size (see kPageSize) and identified by dense PageIds. This is the
// bottom layer under the buffer pool; nothing above it touches the file
// directly.

#ifndef INSIGHTNOTES_STORAGE_DISK_MANAGER_H_
#define INSIGHTNOTES_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace insightnotes::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);
inline constexpr size_t kPageSize = 4096;

/// Owns the database file. Not thread-safe (one engine instance per file).
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if needed) the file at `path`. An empty `path` selects
  /// a purely in-memory mode where pages live in an anonymous buffer —
  /// convenient for tests and benches that don't care about persistence.
  Status Open(const std::string& path);

  /// Flushes and closes. Safe to call twice.
  Status Close();

  /// Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `out` (must have kPageSize bytes).
  Status ReadPage(PageId id, char* out);

  /// Writes kPageSize bytes from `data` to page `id`.
  Status WritePage(PageId id, const char* data);

  /// Number of pages allocated so far.
  uint32_t num_pages() const { return num_pages_; }

  /// Lifetime I/O counters (for benches and cache-efficiency reporting).
  uint64_t num_reads() const { return num_reads_; }
  uint64_t num_writes() const { return num_writes_; }

  bool is_open() const { return file_ != nullptr || in_memory_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool in_memory_ = false;
  std::string memory_;  // Backing store in in-memory mode.
  uint32_t num_pages_ = 0;
  uint64_t num_reads_ = 0;
  uint64_t num_writes_ = 0;
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_DISK_MANAGER_H_
