// DiskManager: page-granular I/O over a single database file. Pages are
// fixed-size (see kPageSize) and identified by dense PageIds. This is the
// bottom layer under the buffer pool; nothing above it touches the file
// directly.
//
// Every page image reserves its first kPageDataOffset bytes for a CRC32
// checksum word owned by this layer: WritePage stamps it over bytes
// [kPageDataOffset, kPageSize) before the bytes hit the file, and ReadPage
// verifies it, surfacing torn or bit-rotted pages as Status::Corruption
// instead of silent garbage. Page formats above (SlottedPage, overflow
// pages) start their own headers at kPageDataOffset.

#ifndef INSIGHTNOTES_STORAGE_DISK_MANAGER_H_
#define INSIGHTNOTES_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace insightnotes::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);
inline constexpr size_t kPageSize = 4096;

/// Bytes at the head of every page reserved for the disk layer's CRC32
/// checksum word. Page formats must not store data below this offset.
inline constexpr size_t kPageDataOffset = sizeof(uint32_t);

/// How Open treats an existing file at the target path.
enum class DiskOpenMode {
  /// Truncate: the DiskManager owns a fresh, empty database file.
  kTruncate,
  /// Keep existing contents; num_pages() is derived from the file size
  /// (a trailing partial page counts as one — it reads as Corruption).
  /// Creates the file when it does not exist.
  kOpenExisting,
};

/// Owns the database file. Not thread-safe (one engine instance per file).
/// The page I/O surface is virtual so tests can interpose a fault-injecting
/// subclass underneath the buffer pool (see storage/fault_injection.h).
class DiskManager {
 public:
  DiskManager() = default;
  virtual ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens the file at `path`. An empty `path` selects a purely in-memory
  /// mode where pages live in an anonymous buffer — convenient for tests
  /// and benches that don't care about persistence.
  Status Open(const std::string& path, DiskOpenMode mode = DiskOpenMode::kTruncate);

  /// Flushes buffered writes and closes. Flush/close failures propagate as
  /// IoError. Safe to call twice.
  Status Close();

  /// Appends a zeroed page and returns its id. A failed zero-fill write
  /// rolls the allocation back, so the page id can be re-allocated later.
  virtual Result<PageId> AllocatePage();

  /// Reads page `id` into `out` (must have kPageSize bytes) and verifies
  /// its checksum; a mismatch or short read returns Status::Corruption.
  virtual Status ReadPage(PageId id, char* out);

  /// Stamps the checksum word and writes kPageSize bytes from `data` to
  /// page `id`. The caller's buffer is not modified.
  virtual Status WritePage(PageId id, const char* data);

  /// Forces buffered writes to stable storage (fflush + fsync). No-op in
  /// in-memory mode.
  virtual Status Fsync();

  /// Fsyncs directory `dir_path` itself, making renames/creates/unlinks of
  /// its entries durable (see storage::FsyncDir). Routed through the
  /// DiskManager so fault-injecting subclasses can script crashes at
  /// directory-sync points. No-op in in-memory mode.
  virtual Status FsyncDir(const std::string& dir_path);

  /// Number of pages allocated so far.
  uint32_t num_pages() const { return num_pages_; }

  /// Lifetime I/O counters (for benches and cache-efficiency reporting).
  uint64_t num_reads() const { return num_reads_; }
  uint64_t num_writes() const { return num_writes_; }

  bool is_open() const { return file_ != nullptr || in_memory_; }
  const std::string& path() const { return path_; }

 protected:
  /// Copies `data` into `out` (both kPageSize) with the checksum word
  /// recomputed over bytes [kPageDataOffset, kPageSize).
  static void StampChecksum(const char* data, char* out);

  /// Writes `len` raw bytes at page `id`'s offset with no checksum
  /// handling. Fault-injecting subclasses use short `len` for torn writes.
  Status WriteRaw(PageId id, const char* data, size_t len);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool in_memory_ = false;
  std::string memory_;  // Backing store in in-memory mode.
  uint32_t num_pages_ = 0;
  uint64_t num_reads_ = 0;
  uint64_t num_writes_ = 0;
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_DISK_MANAGER_H_
