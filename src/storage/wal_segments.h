// SegmentedWal: the write-ahead log split into fixed-size segment files
// (`<base>.000001`, `<base>.000002`, …) listed by a manifest (`<base>.manifest`).
// Appends go to the last listed segment (the *active* one); MaybeRotate
// seals it and opens a fresh segment once it crosses the size threshold.
//
// Each record has a position (segment id, index within the segment). The
// caller marks positions *dead* as newer mutations supersede them (see
// ann::WalLivenessTracker); CompactOnce picks the sealed segment with the
// highest dead fraction and rewrites only its live records into a fresh
// segment that takes the retired segment's place in the manifest — replay
// order is preserved minus the proven-dead records. Compaction runs on a
// background thread while the owner keeps appending to the active segment:
// the two touch disjoint files, and the shared metadata (segment list,
// dead sets, manifest writes) is guarded by an internal mutex.
//
// Durability of every swap follows the temp+fsync+rename protocol plus a
// parent-directory fsync: a new segment file is synced (file, then
// directory) before the manifest references it, and the manifest itself is
// replaced via `<base>.manifest.tmp` → fsync → rename → directory fsync.
// A crash between any two steps leaves either the old manifest (new file
// is an unreferenced orphan, removed at the next open) or the new one
// (retired file is the orphan) — never a state replay cannot read.
//
// Individual segment files use the WriteAheadLog frame format; torn tails
// are only legal in the active segment (sealed segments were fsynced
// before the manifest sealed them).

#ifndef INSIGHTNOTES_STORAGE_WAL_SEGMENTS_H_
#define INSIGHTNOTES_STORAGE_WAL_SEGMENTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/wal.h"

namespace insightnotes::storage {

/// Position of one record in the segmented log.
struct WalRecordPos {
  uint64_t segment_id = 0;
  uint32_t record_index = 0;  // 0-based, in segment append order.
};

class SegmentedWal {
 public:
  struct Options {
    /// MaybeRotate seals the active segment once it holds at least this
    /// many bytes.
    uint64_t segment_bytes = 1 << 20;
    /// Minimum dead-record fraction before a sealed segment is worth
    /// compacting (a fully-dead segment is always retired).
    double compact_min_dead_ratio = 0.25;
  };

  /// One segment as listed by the manifest, in replay order.
  struct SegmentRef {
    uint64_t id = 0;
    std::string path;
    uint64_t records = 0;  // Sealed record count; 0 for the active segment.
  };

  /// Manifest snapshot returned by LoadForReplay.
  struct Manifest {
    uint64_t next_segment_id = 1;
    std::vector<SegmentRef> segments;  // Replay order; back() is active.
  };

  /// Rollback mark captured before an append (see TruncateTo).
  struct Mark {
    uint64_t offset = 0;    // Byte offset in the active segment.
    uint64_t records = 0;   // Record count of the active segment.
  };

  struct SegmentStats {
    uint64_t id = 0;
    uint64_t records = 0;
    uint64_t dead = 0;
    bool active = false;
  };

  struct CompactionResult {
    bool compacted = false;       // False: no candidate passed the threshold.
    uint64_t segment_id = 0;      // Retired segment.
    uint64_t new_segment_id = 0;  // Replacement; 0 when fully dead (no file).
    uint64_t live_records = 0;    // Records rewritten into the replacement.
    uint64_t dead_records = 0;    // Records eliminated.
  };

  SegmentedWal() = default;
  ~SegmentedWal();

  SegmentedWal(const SegmentedWal&) = delete;
  SegmentedWal& operator=(const SegmentedWal&) = delete;

  /// Reads the manifest for `base` and returns the segments to replay in
  /// order. Prepares the directory for recovery: a legacy single-file log
  /// at `base` is migrated to segment 1 + a manifest; unreferenced segment
  /// files and stale temp files (crash leftovers) are removed. An empty
  /// directory yields an empty segment list.
  static Result<Manifest> LoadForReplay(const std::string& base);

  /// Opens the segmented log rooted at `base`. With `truncate` any existing
  /// segments are deleted and a fresh segment 1 is created. Otherwise the
  /// manifest's last segment becomes the active one, `active_keep_bytes`
  /// (from replay) cuts its torn tail, and `active_records` seeds its
  /// record count.
  Status Open(const std::string& base, bool truncate, uint64_t active_keep_bytes,
              uint64_t active_records, Options options);
  Status Open(const std::string& base, bool truncate,
              uint64_t active_keep_bytes = UINT64_MAX,
              uint64_t active_records = 0) {
    return Open(base, truncate, active_keep_bytes, active_records, Options());
  }

  /// Appends one record to the active segment and returns its position.
  /// Buffered; the record only counts as committed once Sync() returns OK.
  Result<WalRecordPos> Append(std::string_view payload);

  /// Flushes and fsyncs the active segment.
  Status Sync();

  /// Captures the active segment's append position for rollback.
  Result<Mark> MarkPos();

  /// Rolls every byte and record at or past `mark` back out of the active
  /// segment (durable, see WriteAheadLog::TruncateTo). Only valid if no
  /// rotation happened since the mark was captured — the engine rotates
  /// only between mutations, never inside one.
  Status TruncateTo(const Mark& mark);

  /// Seals the active segment and opens a fresh one when the size
  /// threshold is crossed: syncs the old segment, creates + syncs the new
  /// file (file, then directory), then swaps the manifest. No-op below the
  /// threshold.
  Status MaybeRotate();

  /// Marks one record superseded. Unknown segment ids (already retired by
  /// compaction) are ignored — stale marks only make compaction
  /// conservative, never wrong.
  void MarkDead(uint64_t segment_id, uint32_t record_index);
  void MarkDead(WalRecordPos pos) { MarkDead(pos.segment_id, pos.record_index); }

  /// One incremental compaction step, safe to call from a background
  /// thread concurrently with Append/Sync/MaybeRotate: picks the sealed
  /// segment with the highest dead fraction (>= compact_min_dead_ratio),
  /// rewrites its live records into a fresh segment occupying the same
  /// manifest position, and retires the old file. Returns
  /// {compacted = false} when no segment qualifies. On failure the segment
  /// list is unchanged, so the next call retries the same candidate.
  Result<CompactionResult> CompactOnce();

  /// Test seam: invoked before each scripted step of MaybeRotate,
  /// CompactOnce and manifest swaps ("rotate_sync", "rotate_create",
  /// "rotate_seg_fsync", "rotate_dir_fsync", "compact_read",
  /// "compact_create", "compact_write" per record, "compact_fsync",
  /// "compact_dir_fsync", "manifest_temp", "manifest_fsync",
  /// "manifest_rename", "manifest_dir_fsync", "retire_remove",
  /// "retire_dir_fsync"). A non-OK return simulates a process kill at that
  /// point: on-disk state is abandoned exactly as is and the log reports
  /// failed, for the next reopen-and-replay to sort out. Install or clear
  /// the hook only while no rotation or background compaction is in
  /// flight — the hook itself is invoked without the internal lock.
  using FaultHook = std::function<Status(const char* op)>;
  void SetFaultHook(FaultHook hook);

  Status Close();

  bool is_open() const;
  /// True after a simulated crash or an unrecovered partial append.
  bool failed() const;
  /// Successful Append calls since Open.
  uint64_t num_appended() const;
  size_t num_segments() const;
  /// Live + dead record counts per segment, in manifest order.
  std::vector<SegmentStats> Segments() const;
  /// Sum of all segment file sizes plus the manifest, in bytes.
  Result<uint64_t> TotalBytes() const;
  const std::string& base_path() const { return base_; }

  /// Segment file path for `id` under `base` ("<base>.<6-digit id>").
  static std::string SegmentPathFor(const std::string& base, uint64_t id);
  static std::string ManifestPathFor(const std::string& base);

 private:
  struct Segment {
    uint64_t id = 0;
    std::string path;
    uint64_t records = 0;
    std::unordered_set<uint32_t> dead;
  };

  Status Fault(const char* op);
  /// Writes the manifest via temp+fsync+rename+dir-fsync. Caller holds
  /// `mutex_`.
  Status WriteManifestLocked();

  mutable std::mutex mutex_;
  std::string base_;
  Options options_;
  std::vector<Segment> segments_;  // Manifest order; back() is active.
  uint64_t next_segment_id_ = 1;
  std::unique_ptr<WriteAheadLog> active_;  // Open on segments_.back().path.
  uint64_t num_appended_ = 0;
  // Simulated crash: all further ops refused. Atomic because Fault() flips
  // it from both locked contexts (manifest swaps) and unlocked ones
  // (rotation / compaction file I/O), racing with locked readers.
  std::atomic<bool> crashed_{false};
  FaultHook fault_hook_;
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_WAL_SEGMENTS_H_
