// FaultInjectingDiskManager: the storage half of the fault-injection
// harness. Tests interpose it under the buffer pool (EngineOptions::disk or
// a direct BufferPool) and script faults against a global operation counter
// that every ReadPage/WritePage/FsyncDir call advances:
//
//   - transient EIO: the matching k-th operation fails once with IoError,
//     then I/O proceeds normally (exercises retry-with-backoff paths);
//   - torn write: the k-th write persists only a prefix of the page and
//     fails, leaving a page whose checksum no longer matches (a partial
//     page write at power-off);
//   - crash: every operation at or after index k fails — the process "died"
//     at that point; reopen the path with a fresh DiskManager to recover.
//
// Scheduling is deterministic: operation indices are assigned in call
// order, so a scripted fault fires at exactly the same point on every run.
// The counters and the fault script are thread-safe — the engine's
// background WAL compactor and replay workers share the disk with the
// foreground thread.

#ifndef INSIGHTNOTES_STORAGE_FAULT_INJECTION_H_
#define INSIGHTNOTES_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "storage/disk_manager.h"

namespace insightnotes::storage {

/// Which operations a scripted fault applies to.
enum class IoOpKind { kRead, kWrite, kDirFsync, kAny };

class FaultInjectingDiskManager final : public DiskManager {
 public:
  FaultInjectingDiskManager() = default;

  /// The operation matching `kind` at global index `at` fails once with
  /// IoError (transient: a retry of the same logical I/O succeeds).
  void FailOnceAt(IoOpKind kind, uint64_t at);

  /// The write at global index `at` persists only the first `keep_bytes`
  /// bytes of the (checksummed) page image and fails with IoError. The
  /// page is left torn on disk: a later read reports Corruption unless a
  /// full write overwrites it first.
  void TearWriteAt(uint64_t at, size_t keep_bytes = kPageSize / 2);

  /// Every operation at or after global index `at` fails with IoError
  /// ("simulated crash"), including Fsync. Irreversible until Reset.
  void CrashAtOp(uint64_t at);

  /// Clears the fault script and the crash state (counters keep running).
  void Reset();

  /// Operations (reads + writes + directory fsyncs) observed so far.
  uint64_t op_count() const { return op_count_.load(std::memory_order_relaxed); }

  /// True once a scheduled crash point has been reached.
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  /// Faults injected so far (transient + torn + crash-refused operations).
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  Result<PageId> AllocatePage() override { return DiskManager::AllocatePage(); }
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  Status Fsync() override;
  Status FsyncDir(const std::string& dir_path) override;

 private:
  struct ScriptedFault {
    enum class Kind { kTransient, kTorn } kind;
    IoOpKind op;
    uint64_t at;
    size_t keep_bytes;
  };

  /// Consumes and returns the scripted fault matching (`op`, `index`), if
  /// any. Crash cut-offs are handled separately.
  std::optional<ScriptedFault> Match(IoOpKind op, uint64_t index);

  /// Claims the next operation index; returns the crash error if the index
  /// is at or past the crash cut-off.
  Status ClaimOp(uint64_t* index);

  std::mutex faults_mutex_;
  std::vector<ScriptedFault> faults_;
  std::atomic<uint64_t> crash_at_{UINT64_MAX};
  std::atomic<uint64_t> op_count_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<bool> crashed_{false};
};

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_FAULT_INJECTION_H_
