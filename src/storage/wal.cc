#include "storage/wal.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/hash.h"
#include "common/logging.h"

namespace insightnotes::storage {

namespace {

constexpr char kWalMagic[8] = {'I', 'N', 'W', 'A', 'L', '\x01', '\0', '\0'};
constexpr size_t kFrameHeader = 2 * sizeof(uint32_t);  // length + crc.

long SizeOf(std::FILE* file) {
  if (std::fseek(file, 0, SEEK_END) != 0) return -1;
  return std::ftell(file);
}

Status TruncateFileTo(std::FILE* file, uint64_t size, const std::string& path) {
#if defined(_WIN32)
  if (_chsize_s(_fileno(file), static_cast<long long>(size)) != 0) {
    return Status::IoError("cannot truncate WAL '" + path + "' to " +
                           std::to_string(size) + " bytes");
  }
#else
  if (::ftruncate(fileno(file), static_cast<off_t>(size)) != 0) {
    return Status::IoError("cannot truncate WAL '" + path + "' to " +
                           std::to_string(size) + " bytes: " + std::strerror(errno));
  }
#endif
  return Status::OK();
}

Status SyncFileToDisk(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError("WAL flush failed for '" + path +
                           "': " + std::strerror(errno));
  }
#if defined(_WIN32)
  if (_commit(_fileno(file)) != 0) {
    return Status::IoError("WAL commit-to-disk failed for '" + path + "'");
  }
#else
  if (::fsync(fileno(file)) != 0) {
    return Status::IoError("WAL fsync failed for '" + path +
                           "': " + std::strerror(errno));
  }
#endif
  return Status::OK();
}

}  // namespace

Status FsyncDir(const std::string& dir_path) {
#if defined(_WIN32)
  (void)dir_path;
  return Status::OK();
#else
  const std::string dir = dir_path.empty() ? "." : dir_path;
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open directory '" + dir +
                           "' for fsync: " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("cannot fsync directory '" + dir +
                           "': " + std::strerror(saved_errno));
  }
  return Status::OK();
#endif
}

Status FsyncDirOf(const std::string& file_path) {
  return FsyncDir(std::filesystem::path(file_path).parent_path().string());
}

WriteAheadLog::~WriteAheadLog() {
  Status s = Close();
  if (!s.ok()) {
    INSIGHTNOTES_LOG(Error) << "WriteAheadLog::Close failed in destructor: "
                            << s.ToString();
  }
}

Status WriteAheadLog::Open(const std::string& path, bool truncate,
                           uint64_t keep_bytes) {
  if (is_open()) return Status::Internal("WAL already open");
  path_ = path;
  failed_ = false;
  num_appended_ = 0;
  if (!truncate) {
    file_ = std::fopen(path.c_str(), "rb+");
    if (file_ != nullptr) {
      long size = SizeOf(file_);
      if (size < 0) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("cannot size WAL '" + path + "'");
      }
      if (keep_bytes != UINT64_MAX && static_cast<uint64_t>(size) > keep_bytes) {
        Status truncated = TruncateFileTo(file_, keep_bytes, path);
        if (!truncated.ok()) {
          std::fclose(file_);
          file_ = nullptr;
          return truncated.WithContext("cannot cut torn WAL tail");
        }
      }
      if (std::fseek(file_, 0, SEEK_END) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("seek to WAL end failed for '" + path + "'");
      }
      // An empty (or fully truncated) file still needs its magic header.
      if (std::ftell(file_) == 0 &&
          std::fwrite(kWalMagic, 1, sizeof(kWalMagic), file_) != sizeof(kWalMagic)) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("cannot write WAL header to '" + path + "'");
      }
      return Status::OK();
    }
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL '" + path + "'");
  }
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), file_) != sizeof(kWalMagic)) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IoError("cannot write WAL header to '" + path + "'");
  }
  return Status::OK();
}

Status WriteAheadLog::Append(std::string_view payload) {
  if (!is_open()) return Status::Internal("WAL not open");
  if (failed_) {
    return Status::IoError("WAL '" + path_ +
                           "' is failed after an unrecovered partial append");
  }
  long start = std::ftell(file_);
  if (start < 0) {
    return Status::IoError("cannot read WAL append offset of '" + path_ +
                           "': " + std::strerror(errno));
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload.data(), payload.size());
  char header[kFrameHeader];
  std::memcpy(header, &length, sizeof(length));
  std::memcpy(header + sizeof(length), &crc, sizeof(crc));
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    Status io = Status::IoError("WAL append failed for '" + path_ +
                                "': " + std::strerror(errno));
    // A torn frame may sit in the file or the stdio buffer. Rewind to the
    // pre-append offset so later appends extend the acknowledged prefix
    // instead of landing after a frame replay stops at; if the rewind
    // fails the log refuses further appends until repaired.
    std::clearerr(file_);
    if (std::fseek(file_, start, SEEK_SET) != 0 ||
        !TruncateFileTo(file_, static_cast<uint64_t>(start), path_).ok()) {
      failed_ = true;
      return io.WithContext("WAL failed (torn frame could not be rewound)");
    }
    return io;
  }
  ++num_appended_;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (!is_open()) return Status::Internal("WAL not open");
  if (failed_) {
    return Status::IoError("WAL '" + path_ +
                           "' is failed after an unrecovered partial append");
  }
  return SyncFileToDisk(file_, path_);
}

Result<uint64_t> WriteAheadLog::AppendOffset() {
  if (!is_open()) return Status::Internal("WAL not open");
  long pos = std::ftell(file_);
  if (pos < 0) {
    return Status::IoError("cannot read WAL append offset of '" + path_ +
                           "': " + std::strerror(errno));
  }
  return static_cast<uint64_t>(pos);
}

Status WriteAheadLog::TruncateTo(uint64_t offset) {
  if (!is_open()) return Status::Internal("WAL not open");
  // fseek first: it flushes whatever stdio buffered, so the truncation
  // below removes those bytes too instead of having them re-land later.
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    failed_ = true;
    return Status::IoError("cannot seek WAL '" + path_ + "' to offset " +
                           std::to_string(offset) + ": " + std::strerror(errno));
  }
  Status truncated = TruncateFileTo(file_, offset, path_);
  if (!truncated.ok()) {
    failed_ = true;
    return truncated;
  }
  Status synced = SyncFileToDisk(file_, path_);
  if (!synced.ok()) {
    failed_ = true;
    return synced.WithContext("WAL rollback not durable");
  }
  failed_ = false;  // The valid prefix provably ends here: repaired.
  return Status::OK();
}

Status WriteAheadLog::Rewrite(const std::vector<std::string>& payloads) {
  if (!is_open()) return Status::Internal("WAL not open");
  if (failed_) {
    return Status::IoError("WAL '" + path_ +
                           "' is failed after an unrecovered partial append");
  }
  // Build the replacement beside the live log so the swap is a rename.
  const std::string temp_path = path_ + ".compact";
  // Simulated crash (test seam): abandon whatever handles exist, leave
  // the on-disk files exactly as they are — no cleanup, no rollback —
  // and report the log closed, like a process kill at this point would.
  auto crash = [&](std::FILE* temp_handle, Status status) {
    if (temp_handle != nullptr) std::fclose(temp_handle);
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    return status;
  };
  auto fault = [&](const char* op) -> Status {
    if (!rewrite_fault_hook_) return Status::OK();
    return rewrite_fault_hook_(op);
  };
  if (Status f = fault("temp_create"); !f.ok()) return crash(nullptr, std::move(f));
  std::FILE* temp = std::fopen(temp_path.c_str(), "wb");
  if (temp == nullptr) {
    return Status::IoError("cannot open WAL rewrite file '" + temp_path +
                           "': " + std::strerror(errno));
  }
  auto fail_temp = [&](Status status) {
    std::fclose(temp);
    std::remove(temp_path.c_str());
    return status;
  };
  if (Status f = fault("temp_header"); !f.ok()) return crash(temp, std::move(f));
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), temp) != sizeof(kWalMagic)) {
    return fail_temp(Status::IoError("cannot write WAL header to '" + temp_path +
                                     "': " + std::strerror(errno)));
  }
  for (const std::string& payload : payloads) {
    if (Status f = fault("temp_write"); !f.ok()) return crash(temp, std::move(f));
    uint32_t length = static_cast<uint32_t>(payload.size());
    uint32_t crc = Crc32(payload.data(), payload.size());
    char header[kFrameHeader];
    std::memcpy(header, &length, sizeof(length));
    std::memcpy(header + sizeof(length), &crc, sizeof(crc));
    if (std::fwrite(header, 1, sizeof(header), temp) != sizeof(header) ||
        std::fwrite(payload.data(), 1, payload.size(), temp) != payload.size()) {
      return fail_temp(Status::IoError("WAL rewrite append failed for '" +
                                       temp_path + "': " + std::strerror(errno)));
    }
  }
  if (Status f = fault("temp_fsync"); !f.ok()) return crash(temp, std::move(f));
  Status synced = SyncFileToDisk(temp, temp_path);
  if (!synced.ok()) return fail_temp(synced);
  if (Status f = fault("temp_close"); !f.ok()) return crash(temp, std::move(f));
  if (std::fclose(temp) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("cannot close WAL rewrite file '" + temp_path + "'");
  }

  // Point of no return: drop the live handle and swap the files. Every
  // payload is already durable in the temp file, so a crash between the
  // close and the rename just leaves the original log plus a stale
  // .compact sibling (overwritten by the next compaction).
  if (Status f = fault("live_close"); !f.ok()) return crash(nullptr, std::move(f));
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    std::remove(temp_path.c_str());
    return Status::IoError("cannot close WAL '" + path_ + "' for rewrite");
  }
  file_ = nullptr;
  if (Status f = fault("rename"); !f.ok()) return crash(nullptr, std::move(f));
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    Status renamed = Status::IoError("cannot swap rewritten WAL into '" + path_ +
                                     "': " + std::strerror(errno));
    std::remove(temp_path.c_str());
    // The original log is intact on disk; reopen it for appending.
    file_ = std::fopen(path_.c_str(), "rb+");
    if (file_ == nullptr || std::fseek(file_, 0, SEEK_END) != 0) {
      if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
      }
      return renamed.WithContext("WAL closed (reopen after failed swap failed)");
    }
    return renamed;
  }
  // The rename swapped the directory entry, but the entry itself only
  // becomes durable once the parent directory is synced — without this a
  // power loss here can resurrect the pre-rewrite log on some filesystems.
  if (Status f = fault("dir_fsync"); !f.ok()) return crash(nullptr, std::move(f));
  if (Status synced_dir = FsyncDirOf(path_); !synced_dir.ok()) {
    // The swap may or may not be durable; report the log closed so the
    // caller falls back to reopen-and-replay, which handles either file.
    return synced_dir.WithContext("WAL closed (swap durability unknown)");
  }
  if (Status f = fault("post_rename"); !f.ok()) return crash(nullptr, std::move(f));
  file_ = std::fopen(path_.c_str(), "rb+");
  if (file_ == nullptr || std::fseek(file_, 0, SEEK_END) != 0) {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    return Status::IoError("cannot reopen rewritten WAL '" + path_ + "'");
  }
  num_appended_ += payloads.size();
  return Status::OK();
}

Status WriteAheadLog::Close() {
  Status result = Status::OK();
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) {
      result = Status::IoError("WAL flush on close failed for '" + path_ + "'");
    }
    if (std::fclose(file_) != 0 && result.ok()) {
      result = Status::IoError("WAL close failed for '" + path_ + "'");
    }
    file_ = nullptr;
  }
  return result;
}

Result<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path, const std::function<Status(std::string_view)>& fn) {
  ReplayStats stats;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return stats;  // Missing log = empty log.
  long size_long = SizeOf(file);
  if (size_long < 0) {
    std::fclose(file);
    return Status::IoError("cannot size WAL '" + path + "'");
  }
  uint64_t size = static_cast<uint64_t>(size_long);
  std::rewind(file);

  char magic[sizeof(kWalMagic)];
  if (size == 0) {
    std::fclose(file);
    return stats;
  }
  if (size < sizeof(kWalMagic) ||
      std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    std::fclose(file);
    return Status::Corruption("'" + path + "' is not an InsightNotes WAL");
  }
  stats.valid_bytes = sizeof(kWalMagic);

  std::vector<char> payload;
  while (stats.valid_bytes + kFrameHeader <= size) {
    char header[kFrameHeader];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    uint32_t length, crc;
    std::memcpy(&length, header, sizeof(length));
    std::memcpy(&crc, header + sizeof(length), sizeof(crc));
    if (stats.valid_bytes + kFrameHeader + length > size) break;  // Torn tail.
    payload.resize(length);
    if (length > 0 && std::fread(payload.data(), 1, length, file) != length) break;
    if (Crc32(payload.data(), length) != crc) break;  // Corrupt tail.
    Status applied = fn(std::string_view(payload.data(), length));
    if (!applied.ok()) {
      std::fclose(file);
      return applied;
    }
    ++stats.records;
    stats.valid_bytes += kFrameHeader + length;
  }
  stats.truncated_bytes = size - stats.valid_bytes;
  std::fclose(file);
  return stats;
}

}  // namespace insightnotes::storage
