#include "storage/wal.h"

#include <cerrno>
#include <cstring>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/hash.h"
#include "common/logging.h"

namespace insightnotes::storage {

namespace {

constexpr char kWalMagic[8] = {'I', 'N', 'W', 'A', 'L', '\x01', '\0', '\0'};
constexpr size_t kFrameHeader = 2 * sizeof(uint32_t);  // length + crc.

long SizeOf(std::FILE* file) {
  if (std::fseek(file, 0, SEEK_END) != 0) return -1;
  return std::ftell(file);
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  Status s = Close();
  if (!s.ok()) {
    INSIGHTNOTES_LOG(Error) << "WriteAheadLog::Close failed in destructor: "
                            << s.ToString();
  }
}

Status WriteAheadLog::Open(const std::string& path, bool truncate,
                           uint64_t keep_bytes) {
  if (is_open()) return Status::Internal("WAL already open");
  path_ = path;
  if (!truncate) {
    file_ = std::fopen(path.c_str(), "rb+");
    if (file_ != nullptr) {
      long size = SizeOf(file_);
      if (size < 0) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("cannot size WAL '" + path + "'");
      }
      if (keep_bytes != UINT64_MAX && static_cast<uint64_t>(size) > keep_bytes) {
#if !defined(_WIN32)
        if (::ftruncate(fileno(file_), static_cast<off_t>(keep_bytes)) != 0) {
          std::fclose(file_);
          file_ = nullptr;
          return Status::IoError("cannot truncate torn WAL tail of '" + path +
                                 "': " + std::strerror(errno));
        }
#endif
      }
      if (std::fseek(file_, 0, SEEK_END) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("seek to WAL end failed for '" + path + "'");
      }
      // An empty (or fully truncated) file still needs its magic header.
      if (std::ftell(file_) == 0 &&
          std::fwrite(kWalMagic, 1, sizeof(kWalMagic), file_) != sizeof(kWalMagic)) {
        std::fclose(file_);
        file_ = nullptr;
        return Status::IoError("cannot write WAL header to '" + path + "'");
      }
      return Status::OK();
    }
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL '" + path + "'");
  }
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), file_) != sizeof(kWalMagic)) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IoError("cannot write WAL header to '" + path + "'");
  }
  return Status::OK();
}

Status WriteAheadLog::Append(std::string_view payload) {
  if (!is_open()) return Status::Internal("WAL not open");
  uint32_t length = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload.data(), payload.size());
  char header[kFrameHeader];
  std::memcpy(header, &length, sizeof(length));
  std::memcpy(header + sizeof(length), &crc, sizeof(crc));
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return Status::IoError("WAL append failed for '" + path_ +
                           "': " + std::strerror(errno));
  }
  ++num_appended_;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (!is_open()) return Status::Internal("WAL not open");
  if (std::fflush(file_) != 0) {
    return Status::IoError("WAL flush failed for '" + path_ +
                           "': " + std::strerror(errno));
  }
#if !defined(_WIN32)
  if (::fsync(fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed for '" + path_ +
                           "': " + std::strerror(errno));
  }
#endif
  return Status::OK();
}

Status WriteAheadLog::Close() {
  Status result = Status::OK();
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) {
      result = Status::IoError("WAL flush on close failed for '" + path_ + "'");
    }
    if (std::fclose(file_) != 0 && result.ok()) {
      result = Status::IoError("WAL close failed for '" + path_ + "'");
    }
    file_ = nullptr;
  }
  return result;
}

Result<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path, const std::function<Status(std::string_view)>& fn) {
  ReplayStats stats;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return stats;  // Missing log = empty log.
  long size_long = SizeOf(file);
  if (size_long < 0) {
    std::fclose(file);
    return Status::IoError("cannot size WAL '" + path + "'");
  }
  uint64_t size = static_cast<uint64_t>(size_long);
  std::rewind(file);

  char magic[sizeof(kWalMagic)];
  if (size == 0) {
    std::fclose(file);
    return stats;
  }
  if (size < sizeof(kWalMagic) ||
      std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    std::fclose(file);
    return Status::Corruption("'" + path + "' is not an InsightNotes WAL");
  }
  stats.valid_bytes = sizeof(kWalMagic);

  std::vector<char> payload;
  while (stats.valid_bytes + kFrameHeader <= size) {
    char header[kFrameHeader];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    uint32_t length, crc;
    std::memcpy(&length, header, sizeof(length));
    std::memcpy(&crc, header + sizeof(length), sizeof(crc));
    if (stats.valid_bytes + kFrameHeader + length > size) break;  // Torn tail.
    payload.resize(length);
    if (length > 0 && std::fread(payload.data(), 1, length, file) != length) break;
    if (Crc32(payload.data(), length) != crc) break;  // Corrupt tail.
    Status applied = fn(std::string_view(payload.data(), length));
    if (!applied.ok()) {
      std::fclose(file);
      return applied;
    }
    ++stats.records;
    stats.valid_bytes += kFrameHeader + length;
  }
  stats.truncated_bytes = size - stats.valid_bytes;
  std::fclose(file);
  return stats;
}

}  // namespace insightnotes::storage
