// Retry-with-backoff for transient page I/O errors (graceful degradation
// under flaky devices). Only IoError is considered transient: Corruption,
// OutOfRange and Internal statuses reflect state that a retry cannot fix
// and propagate immediately.

#ifndef INSIGHTNOTES_STORAGE_IO_RETRY_H_
#define INSIGHTNOTES_STORAGE_IO_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/status.h"

namespace insightnotes::storage {

struct IoRetryPolicy {
  /// Total attempts (1 = no retry). The default absorbs short transient
  /// error bursts without masking persistent failures.
  int max_attempts = 4;
  /// Backoff before attempt n+1 is initial * 2^(n-1), capped at `max`.
  int64_t initial_backoff_nanos = 1'000'000;    // 1 ms
  int64_t max_backoff_nanos = 100'000'000;      // 100 ms cap
  /// Sleep hook; tests inject a recorder for deterministic backoff
  /// verification. Null = really sleep.
  std::function<void(int64_t nanos)> sleep;
};

/// Runs `io` up to policy.max_attempts times, backing off between attempts,
/// while it returns IoError. Returns the first non-IoError status (OK or a
/// non-transient failure) or the final IoError.
template <typename Fn>
Status RetryIo(const IoRetryPolicy& policy, Fn&& io) {
  int64_t backoff = policy.initial_backoff_nanos;
  int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = io();
    if (!status.IsIoError() || attempt >= attempts) return status;
    if (policy.sleep) {
      policy.sleep(backoff);
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
    backoff = std::min(backoff * 2, policy.max_backoff_nanos);
  }
}

}  // namespace insightnotes::storage

#endif  // INSIGHTNOTES_STORAGE_IO_RETRY_H_
