// Umbrella header: the public API of the InsightNotes library.
//
// Typical embedding:
//
//   #include "insightnotes/insightnotes.h"
//
//   insightnotes::core::Engine engine;
//   engine.Init();
//   insightnotes::sql::SqlSession session(&engine);
//   session.Execute("CREATE TABLE birds (id BIGINT, name TEXT)");
//   ...
//
// Layer map (see DESIGN.md for the full inventory):
//   core::Engine            — the facade: tables, annotations, instances,
//                             query execution, zoom-in.
//   sql::SqlSession         — SQL dialect on top of the engine.
//   core::SummaryInstance   — admin-defined summary instances (level 2 of
//                             the summarization hierarchy).
//   core::SummaryObject     — per-tuple summaries and their algebra.
//   ann::AnnotationStore    — the raw-annotation repository.
//   workload::WorkloadBuilder — synthetic AKN-style datasets for testing.

#ifndef INSIGHTNOTES_INSIGHTNOTES_H_
#define INSIGHTNOTES_INSIGHTNOTES_H_

#include "annotation/annotation.h"
#include "annotation/annotation_store.h"
#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/rco_cache.h"
#include "core/summary_instance.h"
#include "core/summary_manager.h"
#include "core/summary_object.h"
#include "core/zoom_in.h"
#include "rel/catalog.h"
#include "rel/schema.h"
#include "rel/tuple.h"
#include "rel/value.h"
#include "sql/session.h"
#include "workload/workload.h"

#endif  // INSIGHTNOTES_INSIGHTNOTES_H_
