// Extractive snippet summarization for large document annotations (survey:
// Nenkova & McKeown, the paper's reference [24]). Sentences are scored by
// the frequency of their content words within the document, normalized by
// sentence length; the top sentences are reported in original order.

#ifndef INSIGHTNOTES_MINING_SNIPPETS_H_
#define INSIGHTNOTES_MINING_SNIPPETS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "txt/tokenizer.h"

namespace insightnotes::mining {

struct SnippetOptions {
  size_t max_sentences = 2;   // Sentences per snippet.
  size_t max_chars = 200;     // Hard display cap (ellipsized).
};

class SnippetExtractor {
 public:
  SnippetExtractor() = default;
  explicit SnippetExtractor(SnippetOptions options) : options_(options) {}

  /// Produces a short extractive snippet of `document`. Deterministic:
  /// equal-scoring sentences keep document order. Empty documents yield an
  /// empty snippet.
  std::string Summarize(std::string_view document) const;

  /// Per-sentence scores (exposed for tests): frequency-weighted coverage
  /// of the document's dominant terms, length-normalized.
  std::vector<double> ScoreSentences(const std::vector<std::string>& sentences) const;

  const SnippetOptions& options() const { return options_; }

 private:
  SnippetOptions options_;
  txt::Tokenizer tokenizer_;
};

}  // namespace insightnotes::mining

#endif  // INSIGHTNOTES_MINING_SNIPPETS_H_
