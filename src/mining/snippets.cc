#include "mining/snippets.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "txt/sentence.h"

namespace insightnotes::mining {

std::vector<double> SnippetExtractor::ScoreSentences(
    const std::vector<std::string>& sentences) const {
  // Document-level term frequencies.
  std::unordered_map<std::string, double> tf;
  std::vector<std::vector<std::string>> sentence_tokens;
  sentence_tokens.reserve(sentences.size());
  for (const std::string& s : sentences) {
    sentence_tokens.push_back(tokenizer_.Tokenize(s));
    for (const std::string& t : sentence_tokens.back()) tf[t] += 1.0;
  }
  std::vector<double> scores;
  scores.reserve(sentences.size());
  for (const auto& tokens : sentence_tokens) {
    if (tokens.empty()) {
      scores.push_back(0.0);
      continue;
    }
    double sum = 0.0;
    for (const std::string& t : tokens) sum += tf[t];
    // Length normalization dampens the bias toward long sentences without
    // fully removing it (sqrt, as in centroid-based summarizers).
    scores.push_back(sum / std::sqrt(static_cast<double>(tokens.size())));
  }
  return scores;
}

std::string SnippetExtractor::Summarize(std::string_view document) const {
  std::vector<std::string> sentences = txt::SplitSentences(document);
  if (sentences.empty()) return "";
  std::vector<double> scores = ScoreSentences(sentences);

  // Select the top-k sentence indexes, then restore document order.
  std::vector<size_t> order(sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  size_t k = std::min(options_.max_sentences, sentences.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(k),
                    order.end(), [&](size_t a, size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // Stable: earlier sentence wins ties.
                    });
  std::vector<size_t> chosen(order.begin(), order.begin() + static_cast<ptrdiff_t>(k));
  std::sort(chosen.begin(), chosen.end());

  std::string snippet;
  for (size_t idx : chosen) {
    if (!snippet.empty()) snippet += " ";
    snippet += sentences[idx];
  }
  return Ellipsize(snippet, options_.max_chars);
}

}  // namespace insightnotes::mining
