#include "mining/naive_bayes.h"

#include <cmath>

namespace insightnotes::mining {

NaiveBayesClassifier::NaiveBayesClassifier(std::vector<std::string> labels)
    : labels_(std::move(labels)),
      term_counts_(labels_.size()),
      total_terms_(labels_.size(), 0),
      doc_counts_(labels_.size(), 0) {}

Status NaiveBayesClassifier::Train(size_t label, std::string_view text) {
  if (label >= labels_.size()) {
    return Status::InvalidArgument("label index " + std::to_string(label) +
                                   " out of range (have " +
                                   std::to_string(labels_.size()) + " labels)");
  }
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  for (const std::string& token : tokens) {
    txt::TermId id = vocab_.GetOrAdd(token);
    ++term_counts_[label][id];
    ++total_terms_[label];
  }
  ++doc_counts_[label];
  ++num_docs_;
  return Status::OK();
}

std::vector<double> NaiveBayesClassifier::Scores(std::string_view text) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  size_t l = labels_.size();
  std::vector<double> scores(l, 0.0);
  double vocab_size = static_cast<double>(vocab_.size());
  for (size_t c = 0; c < l; ++c) {
    // Smoothed log prior.
    scores[c] = std::log((static_cast<double>(doc_counts_[c]) + 1.0) /
                         (static_cast<double>(num_docs_) + static_cast<double>(l)));
    double denom = static_cast<double>(total_terms_[c]) + vocab_size + 1.0;
    for (const std::string& token : tokens) {
      // Out-of-vocabulary terms carry no class evidence and are skipped
      // (IIR ch. 13 classifies over vocabulary terms only); in-vocabulary
      // terms unseen in class c get Laplace mass.
      txt::TermId id = vocab_.Lookup(token);
      if (id == txt::kInvalidTermId) continue;
      double count = 0.0;
      auto it = term_counts_[c].find(id);
      if (it != term_counts_[c].end()) count = it->second;
      scores[c] += std::log((count + 1.0) / denom);
    }
  }
  return scores;
}

size_t NaiveBayesClassifier::Classify(std::string_view text) const {
  if (labels_.empty()) return 0;
  std::vector<double> scores = Scores(text);
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  return best;
}

}  // namespace insightnotes::mining
