#include "mining/clustering.h"

#include <algorithm>

namespace insightnotes::mining {

txt::SparseVector TextVectorizer::Vectorize(std::string_view text) {
  return VectorizeTokens(tokenizer_.Tokenize(text));
}

txt::SparseVector TextVectorizer::VectorizeTokens(const std::vector<std::string>& tokens) {
  return txt::SparseVector::FromTokens(tokens, &vocab_);
}

void ClusterSet::TrackDoc(DocId doc) {
  docs_.insert(std::lower_bound(docs_.begin(), docs_.end(), doc), doc);
}

void ClusterSet::UntrackDoc(DocId doc) {
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it != docs_.end() && *it == doc) docs_.erase(it);
}

const txt::SparseVector* ClusterSet::VectorOf(DocId doc) const {
  if (store_ != nullptr) return store_->GetVector(doc);
  auto it = owned_vectors_.find(doc);
  return it == owned_vectors_.end() ? nullptr : &it->second;
}

Result<size_t> ClusterSet::Add(DocId doc, const txt::SparseVector& vec) {
  if (Contains(doc)) {
    return Status::AlreadyExists("document " + std::to_string(doc) +
                                 " already clustered");
  }
  // Join the most similar group at or above the threshold; ties go to the
  // lowest group index (deterministic).
  size_t best = groups_.size();
  double best_sim = -1.0;
  for (size_t i = 0; i < groups_.size(); ++i) {
    double sim = groups_[i].SimilarityTo(vec);
    if (sim >= threshold_ && sim > best_sim) {
      best = i;
      best_sim = sim;
    }
  }
  TrackDoc(doc);
  if (store_ == nullptr) owned_vectors_.emplace(doc, vec);
  if (best == groups_.size()) {
    ClusterGroup group;
    group.centroid_sum = vec;
    group.members = {doc};
    group.representative = doc;
    groups_.push_back(std::move(group));
    return groups_.size() - 1;
  }
  ClusterGroup& group = groups_[best];
  group.centroid_sum.AddScaled(vec, 1.0);
  group.members.insert(
      std::lower_bound(group.members.begin(), group.members.end(), doc), doc);
  ElectRepresentative(&group);
  return best;
}

Status ClusterSet::Remove(DocId doc) {
  if (!Contains(doc)) {
    return Status::NotFound("document " + std::to_string(doc) + " not clustered");
  }
  const txt::SparseVector* vec = VectorOf(doc);
  if (vec == nullptr) {
    return Status::Internal("vector store has no vector for document " +
                            std::to_string(doc));
  }
  for (size_t i = 0; i < groups_.size(); ++i) {
    ClusterGroup& group = groups_[i];
    auto pos = std::lower_bound(group.members.begin(), group.members.end(), doc);
    if (pos == group.members.end() || *pos != doc) continue;
    group.members.erase(pos);
    group.centroid_sum.AddScaled(*vec, -1.0);
    UntrackDoc(doc);
    if (store_ == nullptr) owned_vectors_.erase(doc);
    if (group.members.empty()) {
      groups_.erase(groups_.begin() + static_cast<ptrdiff_t>(i));
    } else if (group.representative == doc) {
      ElectRepresentative(&group);
    }
    return Status::OK();
  }
  return Status::Internal("document tracked but not in any group");
}

Status ClusterSet::Merge(const ClusterSet& other) {
  for (const ClusterGroup& incoming : other.groups_) {
    // Partition incoming members into ones we already hold (shared
    // annotations — must not be double counted) and genuinely new ones.
    std::vector<DocId> fresh;
    // Indexes of local groups the incoming group overlaps with.
    std::vector<size_t> overlapping;
    for (DocId doc : incoming.members) {
      if (!Contains(doc)) {
        fresh.push_back(doc);
        continue;
      }
      for (size_t i = 0; i < groups_.size(); ++i) {
        const auto& members = groups_[i].members;
        if (std::binary_search(members.begin(), members.end(), doc)) {
          if (std::find(overlapping.begin(), overlapping.end(), i) ==
              overlapping.end()) {
            overlapping.push_back(i);
          }
          break;
        }
      }
    }

    auto vector_for = [&](DocId doc) -> Result<const txt::SparseVector*> {
      const txt::SparseVector* vec = other.VectorOf(doc);
      if (vec == nullptr) {
        return Status::Internal("merge source missing vector for document " +
                                std::to_string(doc));
      }
      return vec;
    };

    if (overlapping.empty()) {
      // Disjoint group: append as-is.
      ClusterGroup group;
      group.members = incoming.members;
      for (DocId doc : incoming.members) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(const txt::SparseVector* vec, vector_for(doc));
        TrackDoc(doc);
        if (store_ == nullptr) owned_vectors_.emplace(doc, *vec);
        group.centroid_sum.AddScaled(*vec, 1.0);
      }
      ElectRepresentative(&group);
      groups_.push_back(std::move(group));
      continue;
    }

    // Combine all overlapping local groups into the first one.
    std::sort(overlapping.begin(), overlapping.end());
    ClusterGroup& target = groups_[overlapping.front()];
    for (size_t k = overlapping.size(); k-- > 1;) {
      ClusterGroup& victim = groups_[overlapping[k]];
      for (DocId doc : victim.members) {
        target.members.insert(
            std::lower_bound(target.members.begin(), target.members.end(), doc), doc);
      }
      target.centroid_sum.AddScaled(victim.centroid_sum, 1.0);
      groups_.erase(groups_.begin() + static_cast<ptrdiff_t>(overlapping[k]));
    }
    // Fold in the fresh members of the incoming group.
    for (DocId doc : fresh) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(const txt::SparseVector* vec, vector_for(doc));
      TrackDoc(doc);
      if (store_ == nullptr) owned_vectors_.emplace(doc, *vec);
      target.members.insert(
          std::lower_bound(target.members.begin(), target.members.end(), doc), doc);
      target.centroid_sum.AddScaled(*vec, 1.0);
    }
    ElectRepresentative(&target);
  }
  return Status::OK();
}

Result<std::vector<DocId>> ClusterSet::GroupMembers(size_t index) const {
  if (index >= groups_.size()) {
    return Status::OutOfRange("cluster group " + std::to_string(index) +
                              " out of range");
  }
  return groups_[index].members;
}

bool ClusterSet::SameGrouping(const ClusterSet& other) const {
  if (groups_.size() != other.groups_.size()) return false;
  auto key = [](const ClusterSet& cs) {
    std::vector<std::vector<DocId>> groups;
    groups.reserve(cs.groups_.size());
    for (const ClusterGroup& g : cs.groups_) groups.push_back(g.members);
    std::sort(groups.begin(), groups.end());
    return groups;
  };
  return key(*this) == key(other);
}

void ClusterSet::ElectRepresentative(ClusterGroup* group) const {
  // Election measures against a canonical centroid refolded from the member
  // vectors in ascending id order, not against centroid_sum: the maintained
  // sum accumulates float error in whatever order Add/Merge folded vectors,
  // which differs between serial and parallel (partial-state) plans. The
  // canonical centroid makes the representative a pure function of the
  // member set, so byte-identical membership yields an identical choice.
  txt::SparseVector centroid;
  for (DocId doc : group->members) {
    const txt::SparseVector* vec = VectorOf(doc);
    if (vec != nullptr) centroid.AddScaled(*vec, 1.0);
  }
  double best_sim = -1.0;
  DocId best = group->members.empty() ? 0 : group->members.front();
  for (DocId doc : group->members) {
    const txt::SparseVector* vec = VectorOf(doc);
    if (vec == nullptr) continue;
    double sim = centroid.Cosine(*vec);
    if (sim > best_sim) {
      best_sim = sim;
      best = doc;
    }
  }
  group->representative = best;
}

}  // namespace insightnotes::mining
