// Online single-pass (leader-follower) text clustering with centroid
// maintenance and representative election — the kernel behind Cluster-type
// summary objects (cf. text-stream clustering, the paper's reference [23]).
//
// A ClusterSet holds groups of similar documents. It supports the full
// algebra the summary layer needs:
//   * Add      — incremental maintenance on annotation insert,
//   * Remove   — projection trim (drop the effect of an annotation),
//   * Merge    — join/grouping, overlap-aware: groups sharing members are
//                combined (no double counting), disjoint groups are
//                concatenated — exactly Figure 2's SimCluster semantics.
// Representatives are re-elected deterministically (closest to centroid,
// ties to the lowest document id) whenever membership changes.

#ifndef INSIGHTNOTES_MINING_CLUSTERING_H_
#define INSIGHTNOTES_MINING_CLUSTERING_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "txt/tfidf.h"
#include "txt/tokenizer.h"
#include "txt/vocabulary.h"

namespace insightnotes::mining {

using DocId = uint64_t;

/// Source of document vectors for removal, merging and representative
/// election. When a ClusterSet is given a store, it does NOT retain member
/// vectors itself — cloning a cluster summary then costs O(members) ids
/// instead of O(members x terms) vector data. InsightNotes points this at
/// the summary instance's vectorize-once cache.
class DocVectorStore {
 public:
  virtual ~DocVectorStore() = default;
  /// Vector for `doc`, or nullptr if unknown.
  virtual const txt::SparseVector* GetVector(DocId doc) const = 0;
};

/// Turns raw text into sparse term vectors against a shared, growing
/// vocabulary. One vectorizer is shared by all summary objects of a cluster
/// instance so their vectors are comparable.
class TextVectorizer {
 public:
  TextVectorizer() = default;

  /// Tokenizes and counts; new terms extend the vocabulary.
  txt::SparseVector Vectorize(std::string_view text);

  /// Counts pre-tokenized terms; new terms extend the vocabulary. Lets
  /// parallel ingest tokenize off-thread and fold into the shared
  /// vocabulary in a deterministic serial pass.
  txt::SparseVector VectorizeTokens(const std::vector<std::string>& tokens);

  const txt::Tokenizer& tokenizer() const { return tokenizer_; }
  const txt::Vocabulary& vocabulary() const { return vocab_; }

 private:
  txt::Tokenizer tokenizer_;
  txt::Vocabulary vocab_;
};

/// One group of similar documents.
struct ClusterGroup {
  txt::SparseVector centroid_sum;  // Sum of member vectors.
  std::vector<DocId> members;      // Sorted ascending.
  DocId representative = 0;

  size_t size() const { return members.size(); }
  /// centroid_sum / |members| is the centroid; cosine is scale-invariant so
  /// similarity checks use centroid_sum directly.
  double SimilarityTo(const txt::SparseVector& vec) const {
    return centroid_sum.Cosine(vec);
  }
};

class ClusterSet {
 public:
  /// Documents join the most similar existing group when cosine similarity
  /// to its centroid is >= `threshold`, otherwise they seed a new group.
  /// With a null `store`, member vectors are retained internally
  /// (standalone mode); with a store, vectors are fetched on demand and the
  /// set stays lightweight.
  explicit ClusterSet(double threshold = 0.35, const DocVectorStore* store = nullptr)
      : threshold_(threshold), store_(store) {}

  /// Adds a document; returns the index of the group it joined.
  Result<size_t> Add(DocId doc, const txt::SparseVector& vec);

  /// Removes a document's effect (projection trim). Empty groups vanish;
  /// a dropped representative triggers re-election (Figure 2: A5 replaces
  /// the dropped A2).
  Status Remove(DocId doc);

  /// True if `doc` is a member of any group.
  bool Contains(DocId doc) const {
    return std::binary_search(docs_.begin(), docs_.end(), doc);
  }

  /// Overlap-aware merge (join semantics): groups of `other` sharing at
  /// least one member with a group here are combined without double
  /// counting; disjoint groups are appended.
  Status Merge(const ClusterSet& other);

  const std::vector<ClusterGroup>& groups() const { return groups_; }
  size_t NumGroups() const { return groups_.size(); }
  size_t NumDocuments() const { return docs_.size(); }
  double threshold() const { return threshold_; }

  /// Members of group `index`.
  Result<std::vector<DocId>> GroupMembers(size_t index) const;

  /// Deep equality of membership (groups compared as sorted member lists) —
  /// used by the plan-equivalence tests.
  bool SameGrouping(const ClusterSet& other) const;

 private:
  void ElectRepresentative(ClusterGroup* group) const;
  /// Vector for `doc` from the store or the owned map; nullptr if unknown.
  const txt::SparseVector* VectorOf(DocId doc) const;

  double threshold_;
  const DocVectorStore* store_;
  void TrackDoc(DocId doc);
  void UntrackDoc(DocId doc);

  std::vector<ClusterGroup> groups_;
  std::vector<DocId> docs_;  // All member ids, sorted (cheap to deep-copy).
  // Standalone mode only (store_ == nullptr): retained member vectors.
  std::map<DocId, txt::SparseVector> owned_vectors_;
};

}  // namespace insightnotes::mining

#endif  // INSIGHTNOTES_MINING_CLUSTERING_H_
