// Multinomial Naive Bayes text classifier (Manning, Raghavan & Schütze,
// IIR ch. 13 — the paper's reference [12]). Backs Classifier-type summary
// instances: the domain admin defines the class labels and supplies
// training examples; classification of new annotations is incremental and
// per-document.

#ifndef INSIGHTNOTES_MINING_NAIVE_BAYES_H_
#define INSIGHTNOTES_MINING_NAIVE_BAYES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "txt/tokenizer.h"
#include "txt/vocabulary.h"

namespace insightnotes::mining {

/// Trainable multinomial NB with Laplace (add-one) smoothing. Ties break
/// deterministically toward the lower label index.
class NaiveBayesClassifier {
 public:
  explicit NaiveBayesClassifier(std::vector<std::string> labels);

  /// Adds one training document for `label`.
  Status Train(size_t label, std::string_view text);

  /// Most probable label index for `text`. Usable with zero training (all
  /// priors equal -> label 0); callers normally train first.
  size_t Classify(std::string_view text) const;

  /// Per-label log posterior (unnormalized) — exposed for tests/benches.
  std::vector<double> Scores(std::string_view text) const;

  const std::vector<std::string>& labels() const { return labels_; }
  size_t num_labels() const { return labels_.size(); }
  uint64_t num_training_docs() const { return num_docs_; }
  size_t vocabulary_size() const { return vocab_.size(); }

 private:
  std::vector<std::string> labels_;
  txt::Tokenizer tokenizer_;
  txt::Vocabulary vocab_;
  // term_counts_[label][term] = occurrences in that label's training docs.
  std::vector<std::unordered_map<txt::TermId, uint32_t>> term_counts_;
  std::vector<uint64_t> total_terms_;  // Per label.
  std::vector<uint64_t> doc_counts_;   // Per label.
  uint64_t num_docs_ = 0;
};

}  // namespace insightnotes::mining

#endif  // INSIGHTNOTES_MINING_NAIVE_BAYES_H_
