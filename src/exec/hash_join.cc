#include "exec/hash_join.h"

namespace insightnotes::exec {

HashJoinOperator::HashJoinOperator(std::unique_ptr<Operator> left,
                                   std::unique_ptr<Operator> right,
                                   rel::ExprPtr left_key, rel::ExprPtr right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      schema_(rel::Schema::Concat(left_->OutputSchema(), right_->OutputSchema())) {}

Status HashJoinOperator::Open() {
  INSIGHTNOTES_RETURN_IF_ERROR(left_->Open());
  INSIGHTNOTES_RETURN_IF_ERROR(right_->Open());
  build_.clear();
  matches_ = nullptr;
  match_index_ = 0;
  left_valid_ = false;
  // Build phase over the right input.
  core::AnnotatedTuple tuple;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, right_->Next(&tuple));
    if (!more) break;
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, right_key_->Evaluate(tuple.tuple));
    if (key.is_null()) continue;  // NULL keys never join.
    build_[key].push_back(std::move(tuple));
    tuple = core::AnnotatedTuple();
  }
  return Status::OK();
}

Result<bool> HashJoinOperator::Next(core::AnnotatedTuple* out) {
  while (true) {
    if (left_valid_ && matches_ != nullptr && match_index_ < matches_->size()) {
      const core::AnnotatedTuple& right_tuple = (*matches_)[match_index_++];
      // Clone the probe tuple: it may pair with several build tuples.
      *out = current_left_.Clone();
      INSIGHTNOTES_RETURN_IF_ERROR(core::MergeAnnotatedTuples(out, right_tuple));
      Trace(*out);
      return true;
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
    if (!more) return false;
    left_valid_ = true;
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, left_key_->Evaluate(current_left_.tuple));
    match_index_ = 0;
    if (key.is_null()) {
      matches_ = nullptr;
      continue;
    }
    auto it = build_.find(key);
    matches_ = it == build_.end() ? nullptr : &it->second;
  }
}

std::string HashJoinOperator::Name() const {
  return "HashJoin(" + left_key_->ToString() + " = " + right_key_->ToString() + ")";
}

}  // namespace insightnotes::exec
