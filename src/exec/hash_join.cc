#include "exec/hash_join.h"

#include <future>

namespace insightnotes::exec {

HashJoinBuildState::HashJoinBuildState(std::unique_ptr<Operator> input,
                                       rel::ExprPtr key, size_t num_partitions,
                                       ThreadPool* pool)
    : input_(std::move(input)),
      key_(std::move(key)),
      key_name_(key_->ToString()),
      num_partitions_(std::max<size_t>(1, num_partitions)),
      pool_(pool) {}

void HashJoinBuildState::AttachQueryContext(
    std::shared_ptr<QueryContext> context) {
  if (input_ != nullptr) input_->SetQueryContext(context);
  build_reservation_.Attach(
      context != nullptr ? &context->budget() : nullptr,
      "HashJoinBuild(" + key_name_ + ")");
  context_ = std::move(context);
}

Status HashJoinBuildState::Reset() {
  rows_.clear();
  keys_.clear();
  hashes_.clear();
  build_reservation_.ReleaseAll();
  INSIGHTNOTES_RETURN_IF_ERROR(input_->Open());
  rows_.reserve(input_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, input_->NextBatch(&batch));
    if (!more) break;
    // Batch-granular charge: an over-budget build aborts here with
    // kResourceExhausted naming this operator, before the table finishes
    // materializing.
    INSIGHTNOTES_RETURN_IF_ERROR(
        build_reservation_.Charge(core::ApproxBytes(batch)));
    for (core::AnnotatedTuple& tuple : batch.tuples) {
      rows_.push_back(std::move(tuple));
    }
  }
  keys_.reserve(rows_.size());
  hashes_.reserve(rows_.size());
  // Keys, hashes and the partition-map entries (bucket + index slot each).
  INSIGHTNOTES_RETURN_IF_ERROR(build_reservation_.Charge(
      rows_.size() * (sizeof(rel::Value) + 4 * sizeof(size_t))));
  rel::ValueHash hasher;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if ((i & 1023u) == 0 && context_ != nullptr) {
      INSIGHTNOTES_RETURN_IF_ERROR(context_->CheckInterrupt());
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, key_->Evaluate(rows_[i].tuple));
    hashes_.push_back(key.is_null() ? 0 : hasher(key));
    keys_.push_back(std::move(key));
  }
  partitions_.assign(num_partitions_, PartitionMap{});
  // Each partition is filled by exactly one worker scanning the rows in
  // input order, so match lists come out in build-insertion order and the
  // per-partition maps need no synchronization.
  auto build_partition = [this](size_t p) -> Status {
    PartitionMap& partition = partitions_[p];
    for (size_t i = 0; i < rows_.size(); ++i) {
      if ((i & 4095u) == 0 && context_ != nullptr) {
        INSIGHTNOTES_RETURN_IF_ERROR(context_->CheckInterrupt());
      }
      if (keys_[i].is_null()) continue;  // NULL keys never join.
      if (hashes_[i] % num_partitions_ != p) continue;
      partition[keys_[i]].push_back(i);
    }
    return Status::OK();
  };
  if (pool_ == nullptr || num_partitions_ == 1) {
    for (size_t p = 0; p < num_partitions_; ++p) {
      INSIGHTNOTES_RETURN_IF_ERROR(build_partition(p));
    }
  } else {
    std::vector<std::future<Status>> futures;
    futures.reserve(num_partitions_);
    for (size_t p = 0; p < num_partitions_; ++p) {
      futures.push_back(pool_->Submit([build_partition, p]() -> Status {
        try {
          return build_partition(p);
        } catch (const std::exception& e) {
          return Status::Internal(std::string("partition build threw: ") +
                                  e.what());
        } catch (...) {
          return Status::Internal("partition build threw a non-standard exception");
        }
      }));
    }
    // Join every future before returning: the jobs reference this state.
    Status first_error;
    for (auto& future : futures) {
      Status status;
      try {
        status = future.get();
      } catch (const std::exception& e) {
        status = Status::Internal(std::string("partition build lost: ") + e.what());
      } catch (...) {
        status = Status::Internal("partition build lost: unknown exception");
      }
      if (first_error.ok() && !status.ok()) first_error = std::move(status);
    }
    INSIGHTNOTES_RETURN_IF_ERROR(first_error);
  }
  return Status::OK();
}

const std::vector<size_t>* HashJoinBuildState::Find(const rel::Value& key) const {
  if (key.is_null()) return nullptr;
  rel::ValueHash hasher;
  const PartitionMap& partition = partitions_[hasher(key) % num_partitions_];
  auto it = partition.find(key);
  return it == partition.end() ? nullptr : &it->second;
}

HashJoinProbeOperator::HashJoinProbeOperator(std::unique_ptr<Operator> child,
                                             std::shared_ptr<HashJoinBuildState> state,
                                             rel::ExprPtr probe_key, bool expose_build)
    : child_(std::move(child)),
      state_(std::move(state)),
      probe_key_(std::move(probe_key)),
      expose_build_(expose_build),
      schema_(rel::Schema::Concat(child_->OutputSchema(), state_->schema())) {}

std::string HashJoinProbeOperator::Name() const {
  return "HashJoinProbe(" + probe_key_->ToString() + " = " + state_->key_name() + ")";
}

std::vector<Operator*> HashJoinProbeOperator::Children() {
  if (expose_build_) return {child_.get(), state_->input()};
  return {child_.get()};
}

Status HashJoinProbeOperator::OpenImpl() {
  // The shared build state is reset by the GatherOperator, not here.
  pending_.Clear();
  pending_pos_ = 0;
  metrics_.build_partitions = state_->num_partitions();
  return child_->Open();
}

Result<bool> HashJoinProbeOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  core::AnnotatedBatch in;
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in));
  if (!more) return false;
  out->tuples.clear();
  out->morsel = in.morsel;
  for (const core::AnnotatedTuple& left : in.tuples) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, probe_key_->Evaluate(left.tuple));
    const std::vector<size_t>* matches = state_->Find(key);
    if (matches == nullptr) continue;
    for (size_t index : *matches) {
      core::AnnotatedTuple joined = left.Clone();
      INSIGHTNOTES_RETURN_IF_ERROR(
          core::MergeAnnotatedTuples(&joined, state_->Row(index)));
      Trace(joined);
      out->tuples.push_back(std::move(joined));
    }
  }
  return true;
}

Result<bool> HashJoinProbeOperator::NextImpl(core::AnnotatedTuple* out) {
  while (pending_pos_ >= pending_.tuples.size()) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, NextBatchImpl(&pending_));
    if (!more) return false;
    pending_pos_ = 0;
  }
  *out = std::move(pending_.tuples[pending_pos_++]);
  return true;
}

HashJoinOperator::HashJoinOperator(std::unique_ptr<Operator> left,
                                   std::unique_ptr<Operator> right,
                                   rel::ExprPtr left_key, rel::ExprPtr right_key)
    : left_(std::move(left)),
      left_key_(std::move(left_key)),
      state_(std::make_shared<HashJoinBuildState>(std::move(right),
                                                  std::move(right_key),
                                                  /*num_partitions=*/1,
                                                  /*pool=*/nullptr)),
      schema_(rel::Schema::Concat(left_->OutputSchema(), state_->schema())) {}

Status HashJoinOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(left_->Open());
  INSIGHTNOTES_RETURN_IF_ERROR(state_->Reset());
  matches_ = nullptr;
  match_index_ = 0;
  left_valid_ = false;
  metrics_.build_partitions = state_->num_partitions();
  return Status::OK();
}

Result<bool> HashJoinOperator::NextImpl(core::AnnotatedTuple* out) {
  while (true) {
    if (left_valid_ && matches_ != nullptr && match_index_ < matches_->size()) {
      const core::AnnotatedTuple& right_tuple = state_->Row((*matches_)[match_index_++]);
      // Clone the probe tuple: it may pair with several build tuples.
      *out = current_left_.Clone();
      INSIGHTNOTES_RETURN_IF_ERROR(core::MergeAnnotatedTuples(out, right_tuple));
      Trace(*out);
      return true;
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
    if (!more) return false;
    left_valid_ = true;
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, left_key_->Evaluate(current_left_.tuple));
    match_index_ = 0;
    matches_ = state_->Find(key);
  }
}

std::string HashJoinOperator::Name() const {
  return "HashJoin(" + left_key_->ToString() + " = " + state_->key_name() + ")";
}

}  // namespace insightnotes::exec
