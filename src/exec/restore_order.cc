#include "exec/restore_order.h"

#include <algorithm>

namespace insightnotes::exec {

Status RestoreOrderOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  ReleaseMemory();
  results_.reserve(child_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(core::ApproxBytes(batch)));
    for (core::AnnotatedTuple& in : batch.tuples) {
      if (in.order_ranks.size() < key_order_.size()) {
        return Status::Internal("RestoreOrder: tuple carries " +
                                std::to_string(in.order_ranks.size()) +
                                " rank(s), expected " +
                                std::to_string(key_order_.size()));
      }
      results_.push_back(std::move(in));
    }
  }
  // Rank vectors are unique per tuple, so this comparator is a strict
  // total order: plain sort suffices and the result is deterministic.
  std::sort(results_.begin(), results_.end(),
            [this](const core::AnnotatedTuple& a, const core::AnnotatedTuple& b) {
              for (size_t k : key_order_) {
                if (a.order_ranks[k] != b.order_ranks[k]) {
                  return a.order_ranks[k] < b.order_ranks[k];
                }
              }
              return false;
            });
  return Status::OK();
}

Result<bool> RestoreOrderOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  out->order_ranks.clear();  // Canonical order restored; drop the keys.
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
