#include "exec/query_context.h"

#include <string>

namespace insightnotes::exec {

namespace {
int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Status MemoryReservation::Charge(size_t bytes) {
  if (budget_ != nullptr && epoch_ != budget_->epoch()) {
    // A budget Reset (new statement) zeroed this ledger's holdings out of
    // the shared accounting; start fresh instead of assuming the old slabs
    // are still reserved.
    reserved_ = 0;
    epoch_ = budget_->epoch();
  }
  charged_ += bytes;
  if (charged_ > peak_) peak_ = charged_;
  if (budget_ == nullptr || charged_ <= reserved_) return Status::OK();
  // Round the shortfall up to a slab so the shared atomic is touched once
  // per kChunk of growth, not once per row.
  size_t shortfall = charged_ - reserved_;
  size_t slab = (shortfall + kChunk - 1) / kChunk * kChunk;
  if (!budget_->TryReserve(slab)) {
    return Status::ResourceExhausted(
        label_ + ": memory limit exceeded (operator holds " +
        std::to_string(charged_) + " bytes; query uses " +
        std::to_string(budget_->used()) + " of " +
        std::to_string(budget_->limit()) + "-byte limit)");
  }
  reserved_ += slab;
  return Status::OK();
}

void QueryContext::BeginStatement(int64_t timeout_ms,
                                  size_t memory_limit_bytes) {
  cancelled_.store(false, std::memory_order_release);
  checks_.store(0, std::memory_order_relaxed);
  // cancel_at_check_ deliberately survives: tests arm the trip before the
  // statement starts; CancelAtCheck(0) disarms it.
  timeout_ms_ = timeout_ms;
  deadline_ns_.store(
      timeout_ms > 0 ? NowNanos() + timeout_ms * int64_t{1000000} : 0,
      std::memory_order_relaxed);
  budget_.Reset(memory_limit_bytes);
}

Status QueryContext::CheckInterrupt() {
  uint64_t n = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t trip = cancel_at_check_.load(std::memory_order_relaxed);
  if (trip != 0 && n >= trip) Cancel();
  if (cancelled_.load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled");
  }
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && NowNanos() >= deadline) {
    return Status::DeadlineExceeded("statement timeout (" +
                                    std::to_string(timeout_ms_) +
                                    " ms) exceeded");
  }
  return Status::OK();
}

}  // namespace insightnotes::exec
