#include "exec/aggregate.h"

#include <unordered_map>

namespace insightnotes::exec {

std::string_view AggregateFunctionToString(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCountStar:
      return "COUNT(*)";
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kAvg:
      return "AVG";
  }
  return "?";
}

AggregateOperator::AggregateOperator(std::unique_ptr<Operator> child,
                                     std::vector<rel::ExprPtr> group_exprs,
                                     std::vector<rel::Column> group_columns,
                                     std::vector<AggregateItem> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    rel::Column column = i < group_columns.size()
                             ? group_columns[i]
                             : rel::Column{group_exprs_[i]->ToString(),
                                           rel::ValueType::kNull, ""};
    if (column.type == rel::ValueType::kNull) {
      // Infer the type when grouping by a plain child column.
      std::vector<size_t> refs;
      group_exprs_[i]->CollectColumnRefs(&refs);
      if (refs.size() == 1 && refs[0] < child_->OutputSchema().NumColumns()) {
        column.type = child_->OutputSchema().ColumnAt(refs[0]).type;
      }
    }
    schema_.AddColumn(std::move(column));
  }
  for (const AggregateItem& item : aggregates_) {
    rel::ValueType type = (item.fn == AggregateFunction::kCount ||
                           item.fn == AggregateFunction::kCountStar)
                              ? rel::ValueType::kInt64
                              : rel::ValueType::kNull;
    schema_.AddColumn(rel::Column{item.output_name, type, ""});
  }
}

Status AggregateOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  groups_.clear();
  cursor_ = 0;

  std::unordered_map<rel::Tuple, size_t,
                     decltype([](const rel::Tuple& t) { return static_cast<size_t>(t.Hash()); })>
      index;
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      rel::Tuple key;
      for (const auto& expr : group_exprs_) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, expr->Evaluate(in.tuple));
        key.Append(std::move(v));
      }
      auto [it, inserted] = index.emplace(key, groups_.size());
      if (inserted) {
        Group group;
        group.merged = core::AnnotatedTuple(key);
        group.merged.summaries.reserve(in.summaries.size());
        for (const auto& s : in.summaries) group.merged.summaries.push_back(s->Clone());
        // Grouped outputs expose aggregate columns, not the original ones:
        // annotation coverage degrades to whole-row.
        for (const core::AttachmentInfo& att : in.attachments) {
          group.merged.attachments.push_back(core::AttachmentInfo{att.id, {}});
        }
        group.states.resize(aggregates_.size());
        INSIGHTNOTES_RETURN_IF_ERROR(Accumulate(&group, in));
        groups_.push_back(std::move(group));
      } else {
        Group& group = groups_[it->second];
        core::AnnotatedTuple stripped;
        stripped.tuple = in.tuple;
        stripped.summaries = std::move(in.summaries);
        for (const core::AttachmentInfo& att : in.attachments) {
          stripped.attachments.push_back(core::AttachmentInfo{att.id, {}});
        }
        INSIGHTNOTES_RETURN_IF_ERROR(core::MergeForGrouping(&group.merged, stripped));
        INSIGHTNOTES_RETURN_IF_ERROR(Accumulate(&group, in));
      }
    }
  }

  // Global aggregate over empty input still emits one row of zero counts.
  if (groups_.empty() && group_exprs_.empty()) {
    Group group;
    group.states.resize(aggregates_.size());
    groups_.push_back(std::move(group));
  }
  return Status::OK();
}

Status AggregateOperator::Accumulate(Group* group, const core::AnnotatedTuple& in) {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggregateItem& item = aggregates_[i];
    AggState& state = group->states[i];
    if (item.fn == AggregateFunction::kCountStar) {
      ++state.count;
      continue;
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, item.arg->Evaluate(in.tuple));
    if (v.is_null()) continue;  // SQL semantics: NULLs ignored.
    ++state.count;
    switch (item.fn) {
      case AggregateFunction::kCount:
        break;
      case AggregateFunction::kSum:
      case AggregateFunction::kAvg: {
        INSIGHTNOTES_ASSIGN_OR_RETURN(double d, v.ToNumeric());
        state.sum += d;
        if (v.type() == rel::ValueType::kInt64) {
          state.isum += v.AsInt64();
        } else {
          state.sum_is_int = false;
        }
        break;
      }
      case AggregateFunction::kMin: {
        if (state.min.is_null()) {
          state.min = v;
        } else {
          INSIGHTNOTES_ASSIGN_OR_RETURN(int c, v.Compare(state.min));
          if (c < 0) state.min = v;
        }
        break;
      }
      case AggregateFunction::kMax: {
        if (state.max.is_null()) {
          state.max = v;
        } else {
          INSIGHTNOTES_ASSIGN_OR_RETURN(int c, v.Compare(state.max));
          if (c > 0) state.max = v;
        }
        break;
      }
      case AggregateFunction::kCountStar:
        break;
    }
  }
  return Status::OK();
}

Result<rel::Value> AggregateOperator::Finalize(const AggState& state,
                                               AggregateFunction fn) const {
  switch (fn) {
    case AggregateFunction::kCountStar:
    case AggregateFunction::kCount:
      return rel::Value(state.count);
    case AggregateFunction::kSum:
      if (state.count == 0) return rel::Value::Null();
      return state.sum_is_int ? rel::Value(state.isum) : rel::Value(state.sum);
    case AggregateFunction::kAvg:
      if (state.count == 0) return rel::Value::Null();
      return rel::Value(state.sum / static_cast<double>(state.count));
    case AggregateFunction::kMin:
      return state.min;
    case AggregateFunction::kMax:
      return state.max;
  }
  return Status::Internal("unknown aggregate function");
}

Result<bool> AggregateOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= groups_.size()) return false;
  Group& group = groups_[cursor_++];
  rel::Tuple result = group.merged.tuple;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, Finalize(group.states[i], aggregates_[i].fn));
    result.Append(std::move(v));
  }
  out->tuple = std::move(result);
  out->summaries = std::move(group.merged.summaries);
  out->attachments = std::move(group.merged.attachments);
  Trace(*out);
  return true;
}

std::string AggregateOperator::Name() const {
  std::string name = "Aggregate(";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) name += ", ";
    name += group_exprs_[i]->ToString();
  }
  name += " | ";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) name += ", ";
    name += AggregateFunctionToString(aggregates_[i].fn);
  }
  name += ")";
  return name;
}

}  // namespace insightnotes::exec
