#include "exec/aggregate.h"

#include <algorithm>
#include <unordered_map>

#include "common/clock.h"

namespace insightnotes::exec {

namespace {

struct TupleHash {
  size_t operator()(const rel::Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};
using TupleIndex = std::unordered_map<rel::Tuple, size_t, TupleHash>;

// Flat memory-accounting figure per group beyond keys and AggStates: the
// merged summary state and its hash-index entry.
constexpr size_t kGroupStateApproxBytes = 256;

}  // namespace

std::string_view AggregateFunctionToString(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCountStar:
      return "COUNT(*)";
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kAvg:
      return "AVG";
  }
  return "?";
}

Status AccumulateAggregates(const std::vector<AggregateItem>& items,
                            const rel::Tuple& tuple, std::vector<AggState>* states,
                            bool record_terms) {
  for (size_t i = 0; i < items.size(); ++i) {
    const AggregateItem& item = items[i];
    AggState& state = (*states)[i];
    if (item.fn == AggregateFunction::kCountStar) {
      ++state.count;
      continue;
    }
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, item.arg->Evaluate(tuple));
    if (v.is_null()) continue;  // SQL semantics: NULLs ignored.
    ++state.count;
    switch (item.fn) {
      case AggregateFunction::kCount:
        break;
      case AggregateFunction::kSum:
      case AggregateFunction::kAvg: {
        INSIGHTNOTES_ASSIGN_OR_RETURN(double d, v.ToNumeric());
        if (record_terms) {
          state.terms.push_back(d);
        } else {
          state.sum += d;
        }
        if (v.type() == rel::ValueType::kInt64) {
          state.isum += v.AsInt64();
        } else {
          state.sum_is_int = false;
        }
        break;
      }
      case AggregateFunction::kMin: {
        if (state.min.is_null()) {
          state.min = v;
        } else {
          INSIGHTNOTES_ASSIGN_OR_RETURN(int c, v.Compare(state.min));
          if (c < 0) state.min = v;
        }
        break;
      }
      case AggregateFunction::kMax: {
        if (state.max.is_null()) {
          state.max = v;
        } else {
          INSIGHTNOTES_ASSIGN_OR_RETURN(int c, v.Compare(state.max));
          if (c > 0) state.max = v;
        }
        break;
      }
      case AggregateFunction::kCountStar:
        break;
    }
  }
  return Status::OK();
}

Status MergeAggStates(AggState* into, AggState&& other) {
  into->count += other.count;
  into->isum += other.isum;
  into->sum_is_int = into->sum_is_int && other.sum_is_int;
  // `sum` is intentionally not folded: partial states carry their float
  // terms in `terms` and FoldAggTerms replays the concatenation in morsel
  // order, which is the only order that reproduces the serial bit pattern.
  if (!other.terms.empty()) {
    into->terms.reserve(into->terms.size() + other.terms.size());
    into->terms.insert(into->terms.end(), other.terms.begin(), other.terms.end());
  }
  // The serial fold replaces MIN/MAX only on a strict win, so on ties the
  // earlier (this state's) value survives.
  if (into->min.is_null()) {
    into->min = std::move(other.min);
  } else if (!other.min.is_null()) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(int c, other.min.Compare(into->min));
    if (c < 0) into->min = std::move(other.min);
  }
  if (into->max.is_null()) {
    into->max = std::move(other.max);
  } else if (!other.max.is_null()) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(int c, other.max.Compare(into->max));
    if (c > 0) into->max = std::move(other.max);
  }
  return Status::OK();
}

void FoldAggTerms(AggState* state) {
  for (double d : state->terms) state->sum += d;
  state->terms.clear();
}

Result<rel::Value> FinalizeAggregate(const AggState& state, AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCountStar:
    case AggregateFunction::kCount:
      return rel::Value(state.count);
    case AggregateFunction::kSum:
      if (state.count == 0) return rel::Value::Null();
      return state.sum_is_int ? rel::Value(state.isum) : rel::Value(state.sum);
    case AggregateFunction::kAvg:
      if (state.count == 0) return rel::Value::Null();
      return rel::Value(state.sum / static_cast<double>(state.count));
    case AggregateFunction::kMin:
      return state.min;
    case AggregateFunction::kMax:
      return state.max;
  }
  return Status::Internal("unknown aggregate function");
}

rel::Schema MakeAggregateSchema(const rel::Schema& input,
                                const std::vector<rel::ExprPtr>& group_exprs,
                                const std::vector<rel::Column>& group_columns,
                                const std::vector<AggregateItem>& aggregates) {
  rel::Schema schema;
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    rel::Column column = i < group_columns.size()
                             ? group_columns[i]
                             : rel::Column{group_exprs[i]->ToString(),
                                           rel::ValueType::kNull, ""};
    if (column.type == rel::ValueType::kNull) {
      column.type = group_exprs[i]->InferType(input);
    }
    schema.AddColumn(std::move(column));
  }
  for (const AggregateItem& item : aggregates) {
    rel::ValueType type = rel::ValueType::kNull;
    switch (item.fn) {
      case AggregateFunction::kCountStar:
      case AggregateFunction::kCount:
        type = rel::ValueType::kInt64;
        break;
      case AggregateFunction::kAvg:
        type = rel::ValueType::kFloat64;
        break;
      case AggregateFunction::kSum:
      case AggregateFunction::kMin:
      case AggregateFunction::kMax: {
        // SUM keeps the argument type (integer sums stay BIGINT); MIN/MAX
        // return one of the input values.
        rel::ValueType arg =
            item.arg != nullptr ? item.arg->InferType(input) : rel::ValueType::kNull;
        if (arg == rel::ValueType::kInt64 || arg == rel::ValueType::kFloat64 ||
            (item.fn != AggregateFunction::kSum && arg == rel::ValueType::kString)) {
          type = arg;
        }
        break;
      }
    }
    schema.AddColumn(rel::Column{item.output_name, type, ""});
  }
  return schema;
}

std::string FormatAggregateName(std::string_view prefix,
                                const std::vector<rel::ExprPtr>& group_exprs,
                                const std::vector<AggregateItem>& aggregates) {
  std::string name(prefix);
  name += "(";
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    if (i > 0) name += ", ";
    name += group_exprs[i]->ToString();
  }
  name += " | ";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) name += ", ";
    name += AggregateFunctionToString(aggregates[i].fn);
  }
  name += ")";
  return name;
}

AggregateOperator::AggregateOperator(std::unique_ptr<Operator> child,
                                     std::vector<rel::ExprPtr> group_exprs,
                                     std::vector<rel::Column> group_columns,
                                     std::vector<AggregateItem> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      schema_(MakeAggregateSchema(child_->OutputSchema(), group_exprs_,
                                  group_columns, aggregates_)) {}

Status AggregateOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  groups_.clear();
  cursor_ = 0;
  ReleaseMemory();

  TupleIndex index;
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      rel::Tuple key;
      for (const auto& expr : group_exprs_) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, expr->Evaluate(in.tuple));
        key.Append(std::move(v));
      }
      auto [it, inserted] = index.emplace(key, groups_.size());
      if (inserted) {
        Group group;
        group.key = std::move(key);
        INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(
            core::ApproxBytes(group.key) + kGroupStateApproxBytes +
            aggregates_.size() * sizeof(AggState)));
        // Grouped outputs expose aggregate columns, not the original ones:
        // annotation coverage degrades to whole-row.
        group.summary.Seed(&in, /*whole_row=*/true,
                           /*reserve_hint=*/in.attachments.size() * 2);
        group.states.resize(aggregates_.size());
        INSIGHTNOTES_RETURN_IF_ERROR(AccumulateAggregates(
            aggregates_, in.tuple, &group.states, /*record_terms=*/false));
        groups_.push_back(std::move(group));
      } else {
        Group& group = groups_[it->second];
        INSIGHTNOTES_RETURN_IF_ERROR(group.summary.Fold(in));
        INSIGHTNOTES_RETURN_IF_ERROR(AccumulateAggregates(
            aggregates_, in.tuple, &group.states, /*record_terms=*/false));
      }
    }
  }

  // Global aggregate over empty input still emits one row of zero counts.
  if (groups_.empty() && group_exprs_.empty()) {
    Group group;
    group.states.resize(aggregates_.size());
    groups_.push_back(std::move(group));
  }
  return Status::OK();
}

Result<bool> AggregateOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= groups_.size()) return false;
  Group& group = groups_[cursor_++];
  rel::Tuple result = group.key;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v,
                                  FinalizeAggregate(group.states[i], aggregates_[i].fn));
    result.Append(std::move(v));
  }
  out->tuple = std::move(result);
  group.summary.Release(out);
  Trace(*out);
  return true;
}

std::string AggregateOperator::Name() const {
  return FormatAggregateName("Aggregate", group_exprs_, aggregates_);
}

Status PartialAggState::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  partials_.clear();
  return Status::OK();
}

void PartialAggState::Publish(MorselPartial&& partial) {
  std::lock_guard<std::mutex> lock(mutex_);
  partials_.push_back(std::move(partial));
}

std::vector<PartialAggState::MorselPartial> PartialAggState::Take() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(partials_);
}

PartialAggregateOperator::PartialAggregateOperator(
    std::unique_ptr<Operator> child, std::vector<rel::ExprPtr> group_exprs,
    std::vector<AggregateItem> aggregates, std::shared_ptr<PartialAggState> sink)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      sink_(std::move(sink)) {}

Result<bool> PartialAggregateOperator::NextImpl(core::AnnotatedTuple*) {
  core::AnnotatedBatch batch;
  return NextBatchImpl(&batch);
}

Result<bool> PartialAggregateOperator::NextBatchImpl(core::AnnotatedBatch*) {
  // Drain the whole pipeline here: each child batch is one morsel (the
  // morsel scan emits one batch per morsel and every per-tuple stage maps
  // batches 1:1), folded into its own partial group table.
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    if (batch.tuples.empty()) continue;  // Fully filtered morsel.
    PartialAggState::MorselPartial partial;
    partial.morsel = batch.morsel;
    TupleIndex index;
    index.reserve(batch.tuples.size());
    for (core::AnnotatedTuple& in : batch.tuples) {
      rel::Tuple key;
      for (const auto& expr : group_exprs_) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, expr->Evaluate(in.tuple));
        key.Append(std::move(v));
      }
      auto [it, inserted] = index.emplace(key, partial.groups.size());
      if (inserted) {
        PartialAggState::PartialGroup group;
        group.key = std::move(key);
        group.summary.Seed(&in, /*whole_row=*/true,
                           /*reserve_hint=*/in.attachments.size() * 2);
        group.states.resize(aggregates_.size());
        INSIGHTNOTES_RETURN_IF_ERROR(AccumulateAggregates(
            aggregates_, in.tuple, &group.states, /*record_terms=*/true));
        partial.groups.push_back(std::move(group));
      } else {
        PartialAggState::PartialGroup& group = partial.groups[it->second];
        INSIGHTNOTES_RETURN_IF_ERROR(group.summary.Fold(in));
        INSIGHTNOTES_RETURN_IF_ERROR(AccumulateAggregates(
            aggregates_, in.tuple, &group.states, /*record_terms=*/true));
      }
    }
    metrics_.partial_groups += partial.groups.size();
    // Group tables + recorded SUM/AVG replay terms for this morsel.
    size_t partial_bytes =
        batch.tuples.size() * aggregates_.size() * sizeof(double);
    for (const PartialAggState::PartialGroup& group : partial.groups) {
      partial_bytes += core::ApproxBytes(group.key) + kGroupStateApproxBytes +
                       aggregates_.size() * sizeof(AggState);
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(partial_bytes));
    sink_->Publish(std::move(partial));
  }
  return false;  // Partial states surface via the sink, not as batches.
}

std::string PartialAggregateOperator::Name() const {
  return FormatAggregateName("PartialAggregate", group_exprs_, aggregates_);
}

AggregateMergeOperator::AggregateMergeOperator(
    std::unique_ptr<Operator> child, std::vector<rel::ExprPtr> group_exprs,
    std::vector<rel::Column> group_columns, std::vector<AggregateItem> aggregates,
    std::shared_ptr<PartialAggState> source)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      source_(std::move(source)),
      schema_(MakeAggregateSchema(child_->OutputSchema(), group_exprs_,
                                  group_columns, aggregates_)) {}

Status AggregateMergeOperator::OpenImpl() {
  groups_.clear();
  cursor_ = 0;
  // Opening the gather drains every worker pipeline (the pool futures it
  // joins provide the happens-before edge for the published partials).
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  std::vector<PartialAggState::MorselPartial> partials = source_->Take();
  Stopwatch watch;
  // Morsel order is the serial input order; folding the partials in that
  // order re-associates (without reordering) the serial left-fold.
  std::sort(partials.begin(), partials.end(),
            [](const PartialAggState::MorselPartial& a,
               const PartialAggState::MorselPartial& b) { return a.morsel < b.morsel; });
  TupleIndex index;
  for (PartialAggState::MorselPartial& partial : partials) {
    for (PartialAggState::PartialGroup& group : partial.groups) {
      auto [it, inserted] = index.emplace(group.key, groups_.size());
      if (inserted) {
        groups_.push_back(std::move(group));
      } else {
        PartialAggState::PartialGroup& into = groups_[it->second];
        INSIGHTNOTES_RETURN_IF_ERROR(into.summary.Combine(std::move(group.summary)));
        for (size_t i = 0; i < aggregates_.size(); ++i) {
          INSIGHTNOTES_RETURN_IF_ERROR(
              MergeAggStates(&into.states[i], std::move(group.states[i])));
        }
      }
    }
  }
  // All terms are concatenated in morsel order now; replay the float sums.
  for (PartialAggState::PartialGroup& group : groups_) {
    for (AggState& state : group.states) FoldAggTerms(&state);
  }
  // Global aggregate over empty input still emits one row of zero counts.
  if (groups_.empty() && group_exprs_.empty()) {
    PartialAggState::PartialGroup group;
    group.states.resize(aggregates_.size());
    groups_.push_back(std::move(group));
  }
  if (metrics_enabled_) {
    metrics_.merge_ns += static_cast<uint64_t>(watch.ElapsedNanos());
  }
  return Status::OK();
}

Result<bool> AggregateMergeOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= groups_.size()) return false;
  PartialAggState::PartialGroup& group = groups_[cursor_++];
  rel::Tuple result = group.key;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v,
                                  FinalizeAggregate(group.states[i], aggregates_[i].fn));
    result.Append(std::move(v));
  }
  out->tuple = std::move(result);
  group.summary.Release(out);
  Trace(*out);
  return true;
}

std::string AggregateMergeOperator::Name() const {
  return FormatAggregateName("AggregateMerge", group_exprs_, aggregates_);
}

}  // namespace insightnotes::exec
