#include "exec/metrics.h"

#include <sstream>

namespace insightnotes::exec {

PlanMetrics CollectPlanMetrics(Operator* root) {
  PlanMetrics node;
  node.name = root->Name();
  node.metrics = root->metrics();
  node.est_rows = root->PlannerEstimate();
  node.has_est = root->HasPlannerEstimate();
  for (Operator* child : root->Children()) {
    node.children.push_back(CollectPlanMetrics(child));
    node.rows_in += node.children.back().metrics.rows_out;
  }
  return node;
}

namespace {

void RenderShape(Operator* op, size_t depth, std::ostringstream* os) {
  *os << std::string(depth * 2, ' ') << "-> " << op->Name()
      << " (est_rows=" << op->PlannerEstimate() << ")\n";
  for (Operator* child : op->Children()) RenderShape(child, depth + 1, os);
}

/// Estimated-vs-actual drift ratio, always >= 1 (max/min, zero-safe: zero
/// counts are treated as 1 so a 0-vs-0 operator reports drift 1).
double DriftRatio(uint64_t est, uint64_t actual) {
  double a = static_cast<double>(est == 0 ? 1 : est);
  double b = static_cast<double>(actual == 0 ? 1 : actual);
  return a > b ? a / b : b / a;
}

void RenderNode(const PlanMetrics& node, size_t depth, std::ostringstream* os) {
  *os << std::string(depth * 2, ' ') << "-> " << node.name << "  (rows_in="
      << node.rows_in << " rows_out=" << node.metrics.rows_out;
  if (node.has_est) {
    double drift = DriftRatio(node.est_rows, node.metrics.rows_out);
    *os << " est_rows=" << node.est_rows << " drift=" << drift
        << (drift > 10.0 ? " [EST-DRIFT>10x]" : "");
  }
  *os << " batches=" << node.metrics.batches_out;
  if (node.metrics.morsels > 0) *os << " morsels=" << node.metrics.morsels;
  if (node.metrics.build_partitions > 0) {
    *os << " build_partitions=" << node.metrics.build_partitions;
  }
  if (node.metrics.partial_groups > 0) {
    *os << " partial_groups=" << node.metrics.partial_groups;
  }
  if (node.metrics.rows_pruned > 0) {
    *os << " rows_pruned=" << node.metrics.rows_pruned;
  }
  if (node.metrics.bound_updates > 0) {
    *os << " bound_updates=" << node.metrics.bound_updates;
  }
  if (node.metrics.merge_ns > 0) {
    *os << " merge_ms=" << static_cast<double>(node.metrics.merge_ns) / 1e6;
  }
  if (node.metrics.cancel_checks > 0) {
    *os << " cancel_checks=" << node.metrics.cancel_checks;
  }
  if (node.metrics.mem_peak > 0) {
    *os << " mem_peak=" << node.metrics.mem_peak;
  }
  *os << " wall_ms=" << static_cast<double>(node.metrics.wall_ns) / 1e6 << ")\n";
  for (const PlanMetrics& child : node.children) RenderNode(child, depth + 1, os);
}

}  // namespace

std::string RenderPlan(Operator* root) {
  std::ostringstream os;
  RenderShape(root, 0, &os);
  return os.str();
}

std::string RenderPlanMetrics(const PlanMetrics& root) {
  std::ostringstream os;
  RenderNode(root, 0, &os);
  return os.str();
}

}  // namespace insightnotes::exec
