// Selection: passes tuples matching the predicate; summaries propagate
// unchanged (Figure 2 step 2).

#ifndef INSIGHTNOTES_EXEC_FILTER_H_
#define INSIGHTNOTES_EXEC_FILTER_H_

#include <memory>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

class FilterOperator final : public Operator {
 public:
  FilterOperator(std::unique_ptr<Operator> child, rel::ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(core::AnnotatedTuple* out) override;
  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Filter" + predicate_->ToString(); }
  void SetTraceSink(TraceSink sink) override {
    child_->SetTraceSink(sink);
    trace_ = std::move(sink);
  }

 private:
  std::unique_ptr<Operator> child_;
  rel::ExprPtr predicate_;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_FILTER_H_
