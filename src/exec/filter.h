// Selection: passes tuples matching the predicate; summaries propagate
// unchanged (Figure 2 step 2).

#ifndef INSIGHTNOTES_EXEC_FILTER_H_
#define INSIGHTNOTES_EXEC_FILTER_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

class FilterOperator final : public Operator {
 public:
  FilterOperator(std::unique_ptr<Operator> child, rel::ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Filter" + predicate_->ToString(); }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  /// Native batch path: consumes exactly one child batch per call and
  /// filters it in place, preserving the morsel tag. The output batch may
  /// be empty (only a `false` return means exhausted).
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  std::unique_ptr<Operator> child_;
  rel::ExprPtr predicate_;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_FILTER_H_
