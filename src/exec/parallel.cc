#include "exec/parallel.h"

#include <algorithm>
#include <future>
#include <limits>

#include "core/engine_snapshot.h"

namespace insightnotes::exec {

Status RowQuota::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  prefix_morsel_ = 0;
  prefix_rows_ = 0;
  satisfied_.store(limit_ == 0, std::memory_order_release);
  return Status::OK();
}

void RowQuota::OnMorselDone(uint64_t morsel, size_t rows) {
  if (satisfied_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  pending_[morsel] = rows;
  // Fold completed morsels into the contiguous prefix, in morsel order.
  auto it = pending_.find(prefix_morsel_);
  while (it != pending_.end()) {
    prefix_rows_ += it->second;
    pending_.erase(it);
    it = pending_.find(++prefix_morsel_);
  }
  if (prefix_rows_ >= limit_) satisfied_.store(true, std::memory_order_release);
}

ScanMorselSource::ScanMorselSource(const rel::Table* table, std::string alias,
                                   core::SummaryManager* manager,
                                   const ann::AnnotationStore* store,
                                   bool with_summaries, size_t morsel_size)
    : table_(table),
      alias_(std::move(alias)),
      manager_(manager),
      store_(store),
      with_summaries_(with_summaries),
      morsel_size_(std::max<size_t>(1, morsel_size)),
      schema_(table->schema().WithQualifier(alias_.empty() ? table->name() : alias_)) {
  if (alias_.empty()) alias_ = table->name();
}

Status ScanMorselSource::Reset() {
  rows_.clear();
  tuples_.clear();
  reservation_.ReleaseAll();
  rows_.reserve(static_cast<size_t>(table_->NumRows()));
  tuples_.reserve(static_cast<size_t>(table_->NumRows()));
  next_morsel_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_release);
  snapshot_ = context_ != nullptr ? context_->snapshot() : nullptr;
  if (snapshot_ != nullptr && !snapshot_->CoversTable(table_->id())) {
    snapshot_ = nullptr;  // Table the pinned epoch predates: live reads.
  }
  // Rows at or beyond the pinned epoch's bound were inserted after the
  // epoch and are invisible (bound caps both prefetch paths below).
  rel::RowId bound = snapshot_ != nullptr
                         ? snapshot_->VisibleRows(table_->id())
                         : std::numeric_limits<rel::RowId>::max();
  // The prefetch is the plan's first big materialization: charge it row by
  // row (batched into slabs by the reservation) so an over-budget scan
  // aborts before the whole table is resident.
  if (has_probe_) {
    std::vector<rel::RowId> matches;
    INSIGHTNOTES_RETURN_IF_ERROR(ProbeIndex(*table_, probe_, &matches));
    for (rel::RowId row : matches) {
      if (row >= bound) break;  // Matches are sorted ascending.
      if (!table_->IsLive(row)) continue;
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Tuple tuple, table_->Get(row));
      INSIGHTNOTES_RETURN_IF_ERROR(
          reservation_.Charge(core::ApproxBytes(tuple) + sizeof(row)));
      rows_.push_back(row);
      tuples_.push_back(std::move(tuple));
    }
    return Status::OK();
  }
  if (snapshot_ != nullptr) {
    Status charge;
    for (rel::RowId row = 0; row < bound; ++row) {
      if (!table_->IsLive(row)) continue;
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Tuple tuple, table_->Get(row));
      charge = reservation_.Charge(core::ApproxBytes(tuple) + sizeof(row));
      if (!charge.ok()) break;
      rows_.push_back(row);
      tuples_.push_back(std::move(tuple));
    }
    return charge;
  }
  Status charge;
  INSIGHTNOTES_RETURN_IF_ERROR(
      table_->Scan([&](rel::RowId row, const rel::Tuple& tuple) {
        charge = reservation_.Charge(core::ApproxBytes(tuple) + sizeof(row));
        if (!charge.ok()) return false;
        rows_.push_back(row);
        tuples_.push_back(tuple);
        return true;
      }));
  return charge;
}

void ScanMorselSource::AttachQueryContext(std::shared_ptr<QueryContext> context) {
  context_ = std::move(context);
  reservation_.Attach(context_ != nullptr ? &context_->budget() : nullptr,
                      "MorselSource(" + alias_ + ")");
}

bool ScanMorselSource::ClaimMorsel(uint64_t* morsel) {
  uint64_t num_morsels = (rows_.size() + morsel_size_ - 1) / morsel_size_;
  // Checked before the cursor bump so a satisfied quota stops dispatch
  // without consuming morsel indexes (UndispatchedRows stays exact).
  if (quota_ != nullptr && quota_->Satisfied()) return false;
  if (abort_.load(std::memory_order_acquire)) return false;
  uint64_t claimed = next_morsel_.fetch_add(1, std::memory_order_relaxed);
  if (claimed >= num_morsels) return false;
  *morsel = claimed;
  return true;
}

size_t ScanMorselSource::UndispatchedRows() const {
  uint64_t num_morsels = (rows_.size() + morsel_size_ - 1) / morsel_size_;
  uint64_t next = std::min<uint64_t>(
      next_morsel_.load(std::memory_order_relaxed), num_morsels);
  size_t dispatched = std::min(static_cast<size_t>(next) * morsel_size_, rows_.size());
  return rows_.size() - dispatched;
}

Status ScanMorselSource::Materialize(uint64_t morsel, core::AnnotatedBatch* out) const {
  out->tuples.clear();
  out->morsel = morsel;
  size_t begin = static_cast<size_t>(morsel) * morsel_size_;
  size_t end = std::min(begin + morsel_size_, rows_.size());
  out->tuples.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    core::AnnotatedTuple tuple(tuples_[i]);
    if (stamp_ranks_) tuple.order_ranks.assign(1, static_cast<uint32_t>(i));
    if (with_summaries_) {
      if (snapshot_ != nullptr) {
        // Summary/attachment state from the pinned epoch: workers on other
        // morsels and concurrent writers never perturb what this scan sees.
        INSIGHTNOTES_ASSIGN_OR_RETURN(
            tuple.summaries, snapshot_->SummariesFor(table_->id(), rows_[i]));
        snapshot_->AppendAttachments(table_->id(), rows_[i], &tuple.attachments);
      } else {
        INSIGHTNOTES_ASSIGN_OR_RETURN(
            tuple.summaries, manager_->SummariesFor(table_->id(), rows_[i]));
        for (const ann::Attachment& att : store_->OnRow(table_->id(), rows_[i])) {
          if (store_->IsArchived(att.annotation)) continue;
          tuple.attachments.push_back(core::AttachmentInfo{att.annotation, att.columns});
        }
      }
    }
    out->tuples.push_back(std::move(tuple));
  }
  return Status::OK();
}

Status MorselScanOperator::OpenImpl() {
  pending_.Clear();
  pending_pos_ = 0;
  last_claimed_morsel_ = kNoMorselClaimed;
  return Status::OK();
}

Result<bool> MorselScanOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  uint64_t morsel = 0;
  if (!source_->ClaimMorsel(&morsel)) return false;
  last_claimed_morsel_ = morsel;
  INSIGHTNOTES_RETURN_IF_ERROR(source_->Materialize(morsel, out));
  ++metrics_.morsels;
  if (trace_) {
    for (const core::AnnotatedTuple& tuple : out->tuples) Trace(tuple);
  }
  return true;
}

Result<bool> MorselScanOperator::NextImpl(core::AnnotatedTuple* out) {
  while (pending_pos_ >= pending_.tuples.size()) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, NextBatchImpl(&pending_));
    if (!more) return false;
    pending_pos_ = 0;
  }
  *out = std::move(pending_.tuples[pending_pos_++]);
  return true;
}

namespace {
MorselScanOperator* FindMorselLeaf(Operator* op) {
  if (auto* leaf = dynamic_cast<MorselScanOperator*>(op)) return leaf;
  for (Operator* child : op->Children()) {
    if (MorselScanOperator* leaf = FindMorselLeaf(child)) return leaf;
  }
  return nullptr;
}
}  // namespace

GatherOperator::GatherOperator(std::vector<std::unique_ptr<Operator>> workers,
                               std::vector<std::shared_ptr<SharedPlanState>> states,
                               ThreadPool* pool)
    : workers_(std::move(workers)), states_(std::move(states)), pool_(pool) {
  for (const auto& state : states_) {
    if (auto source = std::dynamic_pointer_cast<ScanMorselSource>(state)) {
      source_ = std::move(source);
      break;
    }
  }
  leaves_.reserve(workers_.size());
  for (const auto& worker : workers_) {
    leaves_.push_back(FindMorselLeaf(worker.get()));
  }
  worker_reservations_.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    worker_reservations_.push_back(std::make_unique<MemoryReservation>());
  }
}

void GatherOperator::SetQueryContext(std::shared_ptr<QueryContext> context) {
  Operator::SetQueryContext(context);  // Workers via Children().
  for (const auto& state : states_) state->AttachQueryContext(context_);
  for (size_t w = 0; w < worker_reservations_.size(); ++w) {
    worker_reservations_[w]->Attach(
        context_ != nullptr ? &context_->budget() : nullptr,
        "Gather(worker " + std::to_string(w) + ")");
  }
}

std::vector<Operator*> GatherOperator::Children() {
  std::vector<Operator*> children;
  children.reserve(workers_.size());
  for (const auto& worker : workers_) children.push_back(worker.get());
  return children;
}

void GatherOperator::SetTraceSink(TraceSink sink) {
  if (sink) {
    auto mutex = std::make_shared<std::mutex>();
    auto inner = std::make_shared<TraceSink>(std::move(sink));
    sink = [mutex, inner](const std::string& op, const core::AnnotatedTuple& t) {
      std::lock_guard<std::mutex> lock(*mutex);
      (*inner)(op, t);
    };
  }
  Operator::SetTraceSink(std::move(sink));
}

Status GatherOperator::DrainWorker(size_t w) {
  Operator* worker = workers_[w].get();
  RowQuota* quota = quota_.get();
  std::vector<core::AnnotatedBatch>* out = &collected_[w];
  MemoryReservation* mem = worker_reservations_[w].get();
  INSIGHTNOTES_RETURN_IF_ERROR(worker->Open());
  while (true) {
    core::AnnotatedBatch batch;
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, worker->NextBatch(&batch));
    if (!more) break;
    INSIGHTNOTES_RETURN_IF_ERROR(mem->Charge(core::ApproxBytes(batch)));
    // Empty batches count too: a fully filtered morsel still advances the
    // quota's contiguous completed prefix.
    if (quota != nullptr) quota->OnMorselDone(batch.morsel, batch.tuples.size());
    out->push_back(std::move(batch));
  }
  return Status::OK();
}

Status GatherOperator::RunWorkerContained(size_t w) {
  Status status = [&]() -> Status {
    try {
      return DrainWorker(w);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("worker pipeline threw: ") + e.what());
    } catch (...) {
      return Status::Internal("worker pipeline threw a non-standard exception");
    }
  }();
  if (!status.ok() && source_ != nullptr) source_->AbortDispatch();
  return status;
}

void GatherOperator::JoinWorkers() {
  for (size_t i = 0; i < futures_.size(); ++i) {
    if (!futures_[i].valid()) continue;
    Status status;
    try {
      status = futures_[i].get();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("worker job lost: ") + e.what());
    } catch (...) {
      status = Status::Internal("worker job lost: unknown exception");
    }
    if (i < worker_status_.size() && worker_status_[i].ok()) {
      worker_status_[i] = std::move(status);
    }
  }
  futures_.clear();
}

Status GatherOperator::FirstWorkerError() const {
  Status first;
  uint64_t first_key = 0;
  for (size_t w = 0; w < worker_status_.size(); ++w) {
    const Status& status = worker_status_[w];
    if (status.ok()) continue;
    // User-driven interrupts hit every worker with the same code; report
    // them as-is rather than attributing the stop to one worker.
    if (status.IsCancelled() || status.IsDeadlineExceeded()) return status;
    MorselScanOperator* leaf = w < leaves_.size() ? leaves_[w] : nullptr;
    uint64_t claimed =
        leaf != nullptr ? leaf->last_claimed_morsel() : uint64_t{0};
    // An error before the first claim (Open failed) sorts before morsel 0.
    uint64_t key = claimed == MorselScanOperator::kNoMorselClaimed
                       ? 0
                       : claimed + 1;
    if (first.ok() || key < first_key) {
      first = status;
      first_key = key;
    }
  }
  return first;
}

Status GatherOperator::OpenImpl() {
  // Quiesce any jobs a previous (aborted) execution left behind, then drop
  // its buffers before re-reserving.
  JoinWorkers();
  batches_.clear();
  batch_cursor_ = 0;
  tuple_cursor_ = 0;
  collected_.clear();
  collected_.resize(workers_.size());
  worker_status_.assign(workers_.size(), Status::OK());
  for (const auto& mem : worker_reservations_) mem->ReleaseAll();

  // Shared states reset once, serially, before any worker job runs: the
  // morsel source's prefetch and the join builds do all buffer-pool I/O
  // here on the caller's thread.
  for (const auto& state : states_) {
    INSIGHTNOTES_RETURN_IF_ERROR(state->Reset());
  }

  if (pool_ == nullptr || workers_.size() == 1) {
    for (size_t w = 0; w < workers_.size(); ++w) {
      worker_status_[w] = RunWorkerContained(w);
    }
  } else {
    futures_.reserve(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
      futures_.push_back(pool_->Submit([this, w] { return RunWorkerContained(w); }));
    }
    JoinWorkers();
  }
  Status error = FirstWorkerError();
  if (!error.ok()) {
    // Leave everything resettable: buffers dropped, reservations returned.
    collected_.clear();
    for (const auto& mem : worker_reservations_) mem->ReleaseAll();
    return error;
  }

  size_t total = 0;
  for (const auto& worker_batches : collected_) total += worker_batches.size();
  batches_.reserve(total);
  for (auto& worker_batches : collected_) {
    for (auto& batch : worker_batches) batches_.push_back(std::move(batch));
  }
  collected_.clear();
  // Re-serialize: morsel indexes are unique, so sorting by them restores
  // the exact order a serial scan would have produced.
  std::sort(batches_.begin(), batches_.end(),
            [](const core::AnnotatedBatch& a, const core::AnnotatedBatch& b) {
              return a.morsel < b.morsel;
            });
  if (quota_ != nullptr && quota_source_ != nullptr) {
    // All workers have joined, so the morsel cursor is final: rows of
    // never-dispatched morsels were pruned by the LIMIT quota.
    metrics_.rows_pruned += quota_source_->UndispatchedRows();
  }
  return Status::OK();
}

Status GatherOperator::CloseImpl() {
  // Teardown ordering for the cancellation path: outstanding worker jobs
  // reference the shared states and per-worker buffers, so they must join
  // before anything else is released.
  JoinWorkers();
  collected_.clear();
  batches_.clear();
  batch_cursor_ = 0;
  tuple_cursor_ = 0;
  for (const auto& mem : worker_reservations_) mem->ReleaseAll();
  return Status::OK();
}

Result<bool> GatherOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  if (batch_cursor_ >= batches_.size()) return false;
  *out = std::move(batches_[batch_cursor_++]);
  return true;
}

Result<bool> GatherOperator::NextImpl(core::AnnotatedTuple* out) {
  while (batch_cursor_ < batches_.size()) {
    core::AnnotatedBatch& batch = batches_[batch_cursor_];
    if (tuple_cursor_ < batch.tuples.size()) {
      *out = std::move(batch.tuples[tuple_cursor_++]);
      return true;
    }
    ++batch_cursor_;
    tuple_cursor_ = 0;
  }
  return false;
}

}  // namespace insightnotes::exec
