#include "exec/parallel.h"

#include <algorithm>
#include <future>

namespace insightnotes::exec {

Status RowQuota::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  prefix_morsel_ = 0;
  prefix_rows_ = 0;
  satisfied_.store(limit_ == 0, std::memory_order_release);
  return Status::OK();
}

void RowQuota::OnMorselDone(uint64_t morsel, size_t rows) {
  if (satisfied_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  pending_[morsel] = rows;
  // Fold completed morsels into the contiguous prefix, in morsel order.
  auto it = pending_.find(prefix_morsel_);
  while (it != pending_.end()) {
    prefix_rows_ += it->second;
    pending_.erase(it);
    it = pending_.find(++prefix_morsel_);
  }
  if (prefix_rows_ >= limit_) satisfied_.store(true, std::memory_order_release);
}

ScanMorselSource::ScanMorselSource(const rel::Table* table, std::string alias,
                                   core::SummaryManager* manager,
                                   const ann::AnnotationStore* store,
                                   bool with_summaries, size_t morsel_size)
    : table_(table),
      alias_(std::move(alias)),
      manager_(manager),
      store_(store),
      with_summaries_(with_summaries),
      morsel_size_(std::max<size_t>(1, morsel_size)),
      schema_(table->schema().WithQualifier(alias_.empty() ? table->name() : alias_)) {
  if (alias_.empty()) alias_ = table->name();
}

Status ScanMorselSource::Reset() {
  rows_.clear();
  tuples_.clear();
  rows_.reserve(static_cast<size_t>(table_->NumRows()));
  tuples_.reserve(static_cast<size_t>(table_->NumRows()));
  next_morsel_.store(0, std::memory_order_relaxed);
  return table_->Scan([&](rel::RowId row, const rel::Tuple& tuple) {
    rows_.push_back(row);
    tuples_.push_back(tuple);
    return true;
  });
}

bool ScanMorselSource::ClaimMorsel(uint64_t* morsel) {
  uint64_t num_morsels = (rows_.size() + morsel_size_ - 1) / morsel_size_;
  // Checked before the cursor bump so a satisfied quota stops dispatch
  // without consuming morsel indexes (UndispatchedRows stays exact).
  if (quota_ != nullptr && quota_->Satisfied()) return false;
  uint64_t claimed = next_morsel_.fetch_add(1, std::memory_order_relaxed);
  if (claimed >= num_morsels) return false;
  *morsel = claimed;
  return true;
}

size_t ScanMorselSource::UndispatchedRows() const {
  uint64_t num_morsels = (rows_.size() + morsel_size_ - 1) / morsel_size_;
  uint64_t next = std::min<uint64_t>(
      next_morsel_.load(std::memory_order_relaxed), num_morsels);
  size_t dispatched = std::min(static_cast<size_t>(next) * morsel_size_, rows_.size());
  return rows_.size() - dispatched;
}

Status ScanMorselSource::Materialize(uint64_t morsel, core::AnnotatedBatch* out) const {
  out->tuples.clear();
  out->morsel = morsel;
  size_t begin = static_cast<size_t>(morsel) * morsel_size_;
  size_t end = std::min(begin + morsel_size_, rows_.size());
  out->tuples.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    core::AnnotatedTuple tuple(tuples_[i]);
    if (with_summaries_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(tuple.summaries,
                                    manager_->SummariesFor(table_->id(), rows_[i]));
      for (const ann::Attachment& att : store_->OnRow(table_->id(), rows_[i])) {
        if (store_->IsArchived(att.annotation)) continue;
        tuple.attachments.push_back(core::AttachmentInfo{att.annotation, att.columns});
      }
    }
    out->tuples.push_back(std::move(tuple));
  }
  return Status::OK();
}

Status MorselScanOperator::OpenImpl() {
  pending_.Clear();
  pending_pos_ = 0;
  return Status::OK();
}

Result<bool> MorselScanOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  uint64_t morsel = 0;
  if (!source_->ClaimMorsel(&morsel)) return false;
  INSIGHTNOTES_RETURN_IF_ERROR(source_->Materialize(morsel, out));
  ++metrics_.morsels;
  if (trace_) {
    for (const core::AnnotatedTuple& tuple : out->tuples) Trace(tuple);
  }
  return true;
}

Result<bool> MorselScanOperator::NextImpl(core::AnnotatedTuple* out) {
  while (pending_pos_ >= pending_.tuples.size()) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, NextBatchImpl(&pending_));
    if (!more) return false;
    pending_pos_ = 0;
  }
  *out = std::move(pending_.tuples[pending_pos_++]);
  return true;
}

GatherOperator::GatherOperator(std::vector<std::unique_ptr<Operator>> workers,
                               std::vector<std::shared_ptr<SharedPlanState>> states,
                               ThreadPool* pool)
    : workers_(std::move(workers)), states_(std::move(states)), pool_(pool) {}

std::vector<Operator*> GatherOperator::Children() {
  std::vector<Operator*> children;
  children.reserve(workers_.size());
  for (const auto& worker : workers_) children.push_back(worker.get());
  return children;
}

void GatherOperator::SetTraceSink(TraceSink sink) {
  if (sink) {
    auto mutex = std::make_shared<std::mutex>();
    auto inner = std::make_shared<TraceSink>(std::move(sink));
    sink = [mutex, inner](const std::string& op, const core::AnnotatedTuple& t) {
      std::lock_guard<std::mutex> lock(*mutex);
      (*inner)(op, t);
    };
  }
  Operator::SetTraceSink(std::move(sink));
}

Status GatherOperator::DrainWorker(Operator* worker, RowQuota* quota,
                                   std::vector<core::AnnotatedBatch>* out) {
  INSIGHTNOTES_RETURN_IF_ERROR(worker->Open());
  while (true) {
    core::AnnotatedBatch batch;
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, worker->NextBatch(&batch));
    if (!more) break;
    // Empty batches count too: a fully filtered morsel still advances the
    // quota's contiguous completed prefix.
    if (quota != nullptr) quota->OnMorselDone(batch.morsel, batch.tuples.size());
    out->push_back(std::move(batch));
  }
  return Status::OK();
}

Status GatherOperator::OpenImpl() {
  // Shared states reset once, serially, before any worker job runs: the
  // morsel source's prefetch and the join builds do all buffer-pool I/O
  // here on the caller's thread.
  for (const auto& state : states_) {
    INSIGHTNOTES_RETURN_IF_ERROR(state->Reset());
  }
  batches_.clear();
  batch_cursor_ = 0;
  tuple_cursor_ = 0;

  RowQuota* quota = quota_.get();
  if (pool_ == nullptr || workers_.size() == 1) {
    for (const auto& worker : workers_) {
      INSIGHTNOTES_RETURN_IF_ERROR(DrainWorker(worker.get(), quota, &batches_));
    }
  } else {
    std::vector<std::future<Status>> futures;
    std::vector<std::vector<core::AnnotatedBatch>> collected(workers_.size());
    futures.reserve(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
      Operator* worker = workers_[w].get();
      std::vector<core::AnnotatedBatch>* sink = &collected[w];
      futures.push_back(pool_->Submit(
          [worker, quota, sink] { return DrainWorker(worker, quota, sink); }));
    }
    Status first_error;
    for (auto& future : futures) {
      Status status = future.get();
      if (first_error.ok() && !status.ok()) first_error = std::move(status);
    }
    INSIGHTNOTES_RETURN_IF_ERROR(first_error);
    size_t total = 0;
    for (const auto& worker_batches : collected) total += worker_batches.size();
    batches_.reserve(total);
    for (auto& worker_batches : collected) {
      for (auto& batch : worker_batches) batches_.push_back(std::move(batch));
    }
  }
  // Re-serialize: morsel indexes are unique, so sorting by them restores
  // the exact order a serial scan would have produced.
  std::sort(batches_.begin(), batches_.end(),
            [](const core::AnnotatedBatch& a, const core::AnnotatedBatch& b) {
              return a.morsel < b.morsel;
            });
  if (quota_ != nullptr && quota_source_ != nullptr) {
    // All workers have joined, so the morsel cursor is final: rows of
    // never-dispatched morsels were pruned by the LIMIT quota.
    metrics_.rows_pruned += quota_source_->UndispatchedRows();
  }
  return Status::OK();
}

Result<bool> GatherOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  if (batch_cursor_ >= batches_.size()) return false;
  *out = std::move(batches_[batch_cursor_++]);
  return true;
}

Result<bool> GatherOperator::NextImpl(core::AnnotatedTuple* out) {
  while (batch_cursor_ < batches_.size()) {
    core::AnnotatedBatch& batch = batches_[batch_cursor_];
    if (tuple_cursor_ < batch.tuples.size()) {
      *out = std::move(batch.tuples[tuple_cursor_++]);
      return true;
    }
    ++batch_cursor_;
    tuple_cursor_ = 0;
  }
  return false;
}

}  // namespace insightnotes::exec
