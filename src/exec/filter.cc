#include "exec/filter.h"

namespace insightnotes::exec {

Result<bool> FilterOperator::NextImpl(core::AnnotatedTuple* out) {
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass, predicate_->EvaluateBool(out->tuple));
    if (pass) {
      Trace(*out);
      return true;
    }
  }
}

Result<bool> FilterOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  size_t kept = 0;
  for (size_t i = 0; i < out->tuples.size(); ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass,
                                  predicate_->EvaluateBool(out->tuples[i].tuple));
    if (!pass) continue;
    if (kept != i) out->tuples[kept] = std::move(out->tuples[i]);
    Trace(out->tuples[kept]);
    ++kept;
  }
  out->tuples.resize(kept);
  return true;
}

}  // namespace insightnotes::exec
