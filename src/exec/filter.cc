#include "exec/filter.h"

namespace insightnotes::exec {

Result<bool> FilterOperator::Next(core::AnnotatedTuple* out) {
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass, predicate_->EvaluateBool(out->tuple));
    if (pass) {
      Trace(*out);
      return true;
    }
  }
}

}  // namespace insightnotes::exec
