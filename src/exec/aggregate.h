// Group-by / aggregation with summary union: all tuples collapsing into a
// group contribute their summaries to the group's merged summary objects
// (shared annotations counted once). Attachment metadata degrades to
// whole-row coverage because the output schema no longer exposes the
// original columns.

#ifndef INSIGHTNOTES_EXEC_AGGREGATE_H_
#define INSIGHTNOTES_EXEC_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

enum class AggregateFunction { kCountStar, kCount, kSum, kMin, kMax, kAvg };

std::string_view AggregateFunctionToString(AggregateFunction fn);

struct AggregateItem {
  AggregateFunction fn = AggregateFunction::kCountStar;
  rel::ExprPtr arg;         // Null for COUNT(*).
  std::string output_name;  // e.g. "cnt".
};

class AggregateOperator final : public Operator {
 public:
  /// Output schema: one column per group expression (described by
  /// `group_columns`, parallel to `group_exprs`), then one per aggregate.
  /// With no group expressions, a single global group is produced (even
  /// over empty input for COUNT).
  AggregateOperator(std::unique_ptr<Operator> child,
                    std::vector<rel::ExprPtr> group_exprs,
                    std::vector<rel::Column> group_columns,
                    std::vector<AggregateItem> aggregates);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool sum_is_int = true;
    int64_t isum = 0;
    rel::Value min;
    rel::Value max;
  };
  struct Group {
    core::AnnotatedTuple merged;  // Group key values + merged summaries.
    std::vector<AggState> states;
  };

  Status Accumulate(Group* group, const core::AnnotatedTuple& in);
  Result<rel::Value> Finalize(const AggState& state, AggregateFunction fn) const;

  std::unique_ptr<Operator> child_;
  std::vector<rel::ExprPtr> group_exprs_;
  std::vector<AggregateItem> aggregates_;
  rel::Schema schema_;

  std::vector<Group> groups_;  // Deterministic: first-seen order.
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_AGGREGATE_H_
