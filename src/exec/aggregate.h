// Group-by / aggregation with summary union: all tuples collapsing into a
// group contribute their summaries to the group's merged summary objects
// (shared annotations counted once). Attachment metadata degrades to
// whole-row coverage because the output schema no longer exposes the
// original columns.
//
// Two plan shapes share the same per-tuple fold (and therefore produce
// byte-identical groups):
//
//   * AggregateOperator — the serial shape: one hash table over the whole
//     input stream.
//   * PartialAggregateOperator (one per worker pipeline, below the gather)
//     + AggregateMergeOperator (above it) — the parallel shape: each
//     worker folds its morsels into per-morsel partial group tables and
//     publishes them to a shared PartialAggState; the merge operator folds
//     the partials in ascending morsel order, which re-associates the
//     serial left-fold (summary merges, attachment unions, MIN/MAX picks)
//     without reordering it. Float SUM/AVG terms are recorded per tuple
//     and replayed in morsel order at merge time, so even the
//     non-associative double addition reproduces the serial bit pattern.

#ifndef INSIGHTNOTES_EXEC_AGGREGATE_H_
#define INSIGHTNOTES_EXEC_AGGREGATE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/summary_manager.h"
#include "exec/operator.h"
#include "exec/parallel.h"
#include "rel/expression.h"

namespace insightnotes::exec {

enum class AggregateFunction { kCountStar, kCount, kSum, kMin, kMax, kAvg };

std::string_view AggregateFunctionToString(AggregateFunction fn);

struct AggregateItem {
  AggregateFunction fn = AggregateFunction::kCountStar;
  rel::ExprPtr arg;         // Null for COUNT(*).
  std::string output_name;  // e.g. "cnt".
};

/// Per-group accumulator of one aggregate item.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;  // Running float sum (serial fold only).
  bool sum_is_int = true;
  int64_t isum = 0;
  rel::Value min;
  rel::Value max;
  // Partial fold only: every SUM/AVG term in input order. The merge stage
  // concatenates them in morsel order and replays them into `sum`, so the
  // non-associative double addition happens in exactly the serial order.
  std::vector<double> terms;
};

/// Folds one input tuple into `states` (parallel to `items`). With
/// `record_terms`, SUM/AVG terms are appended to AggState::terms for the
/// deferred morsel-order replay instead of added to `sum` directly.
Status AccumulateAggregates(const std::vector<AggregateItem>& items,
                            const rel::Tuple& tuple, std::vector<AggState>* states,
                            bool record_terms);

/// Folds `other` (covering strictly later input tuples) into `into`.
/// Counts add, recorded terms concatenate, and MIN/MAX keep the earlier
/// value on ties — exactly what the serial per-tuple fold would do.
Status MergeAggStates(AggState* into, AggState&& other);

/// Replays the recorded SUM/AVG terms into `sum` (after all merges).
void FoldAggTerms(AggState* state);

/// Final output value of one aggregate.
Result<rel::Value> FinalizeAggregate(const AggState& state, AggregateFunction fn);

/// Output schema shared by both aggregation shapes: one column per group
/// expression (typed via Expression::InferType against `input` when
/// `group_columns` does not provide a type), then one per aggregate
/// (COUNT -> BIGINT, AVG -> DOUBLE, SUM/MIN/MAX typed from the argument).
rel::Schema MakeAggregateSchema(const rel::Schema& input,
                                const std::vector<rel::ExprPtr>& group_exprs,
                                const std::vector<rel::Column>& group_columns,
                                const std::vector<AggregateItem>& aggregates);

/// "<prefix>(group exprs | FNs)" — the shared operator-name format.
std::string FormatAggregateName(std::string_view prefix,
                                const std::vector<rel::ExprPtr>& group_exprs,
                                const std::vector<AggregateItem>& aggregates);

class AggregateOperator final : public Operator {
 public:
  /// Output schema: one column per group expression (described by
  /// `group_columns`, parallel to `group_exprs`), then one per aggregate.
  /// With no group expressions, a single global group is produced (even
  /// over empty input for COUNT).
  AggregateOperator(std::unique_ptr<Operator> child,
                    std::vector<rel::ExprPtr> group_exprs,
                    std::vector<rel::Column> group_columns,
                    std::vector<AggregateItem> aggregates);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  struct Group {
    rel::Tuple key;  // Group key values.
    core::PartialSummaryState summary;
    std::vector<AggState> states;
  };

  std::unique_ptr<Operator> child_;
  std::vector<rel::ExprPtr> group_exprs_;
  std::vector<AggregateItem> aggregates_;
  rel::Schema schema_;

  std::vector<Group> groups_;  // Deterministic: first-seen order.
  size_t cursor_ = 0;
};

/// Shared sink of the parallel aggregation shape: per-morsel partial group
/// tables, published by the PartialAggregateOperators as workers drain
/// their pipelines and folded in ascending morsel order by
/// AggregateMergeOperator.
class PartialAggState final : public SharedPlanState {
 public:
  struct PartialGroup {
    rel::Tuple key;
    core::PartialSummaryState summary;
    std::vector<AggState> states;
  };
  struct MorselPartial {
    uint64_t morsel = 0;
    std::vector<PartialGroup> groups;  // First-seen order within the morsel.
  };

  Status Reset() override;
  void Publish(MorselPartial&& partial);
  std::vector<MorselPartial> Take();

 private:
  std::mutex mutex_;
  std::vector<MorselPartial> partials_;
};

/// Per-worker pre-aggregation: drains its child pipeline and folds each
/// morsel batch into a local group table (the same per-tuple fold as the
/// serial operator), publishing one MorselPartial per morsel to the shared
/// sink. Emits no batches itself — the merged groups surface above the
/// gather. OutputSchema passes the child schema through (the gather never
/// sees group rows).
class PartialAggregateOperator final : public Operator {
 public:
  PartialAggregateOperator(std::unique_ptr<Operator> child,
                           std::vector<rel::ExprPtr> group_exprs,
                           std::vector<AggregateItem> aggregates,
                           std::shared_ptr<PartialAggState> sink);

  const rel::Schema& OutputSchema() const override {
    return child_->OutputSchema();
  }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override {
    ReleaseMemory();  // Previous execution's partial-table charges.
    return child_->Open();
  }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<rel::ExprPtr> group_exprs_;
  std::vector<AggregateItem> aggregates_;
  std::shared_ptr<PartialAggState> sink_;
};

/// Final merge above the gather: opening the child runs the parallel
/// section to exhaustion (workers publish their partials), then the
/// per-morsel partial tables are folded in ascending morsel order into the
/// final group table and finalized exactly like the serial operator.
class AggregateMergeOperator final : public Operator {
 public:
  AggregateMergeOperator(std::unique_ptr<Operator> child,
                         std::vector<rel::ExprPtr> group_exprs,
                         std::vector<rel::Column> group_columns,
                         std::vector<AggregateItem> aggregates,
                         std::shared_ptr<PartialAggState> source);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<rel::ExprPtr> group_exprs_;
  std::vector<AggregateItem> aggregates_;
  std::shared_ptr<PartialAggState> source_;
  rel::Schema schema_;

  std::vector<PartialAggState::PartialGroup> groups_;  // First-seen order.
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_AGGREGATE_H_
