#include "exec/seq_scan.h"

#include "core/engine_snapshot.h"

namespace insightnotes::exec {

SeqScanOperator::SeqScanOperator(const rel::Table* table, std::string alias,
                                 core::SummaryManager* manager,
                                 const ann::AnnotationStore* store,
                                 bool with_summaries)
    : table_(table),
      alias_(std::move(alias)),
      manager_(manager),
      store_(store),
      with_summaries_(with_summaries),
      schema_(table->schema().WithQualifier(alias_.empty() ? table->name() : alias_)) {
  if (alias_.empty()) alias_ = table->name();
}

Status SeqScanOperator::OpenImpl() {
  rows_.clear();
  cursor_ = 0;
  snapshot_ = query_context() != nullptr ? query_context()->snapshot() : nullptr;
  if (snapshot_ != nullptr && snapshot_->CoversTable(table_->id())) {
    // Snapshot read: rows inserted after the pinned epoch sit at or beyond
    // the epoch's row bound and stay invisible to this scan.
    rel::RowId bound = snapshot_->VisibleRows(table_->id());
    for (rel::RowId row = 0; row < bound; ++row) {
      if (table_->IsLive(row)) rows_.push_back(row);
    }
    return Status::OK();
  }
  // Live read (no pinned epoch, or a table the epoch predates).
  snapshot_ = nullptr;
  return table_->Scan([&](rel::RowId row, const rel::Tuple&) {
    rows_.push_back(row);
    return true;
  });
}

Result<bool> SeqScanOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= rows_.size()) return false;
  size_t position = cursor_;
  rel::RowId row = rows_[cursor_++];
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Tuple tuple, table_->Get(row));
  *out = core::AnnotatedTuple(std::move(tuple));
  if (stamp_ranks_) out->order_ranks.assign(1, static_cast<uint32_t>(position));
  if (with_summaries_) {
    if (snapshot_ != nullptr) {
      // Summaries and attachment metadata from the pinned epoch: concurrent
      // writers maintain newer versions without this scan observing them.
      INSIGHTNOTES_ASSIGN_OR_RETURN(
          out->summaries, snapshot_->SummariesFor(table_->id(), row));
      snapshot_->AppendAttachments(table_->id(), row, &out->attachments);
    } else {
      INSIGHTNOTES_ASSIGN_OR_RETURN(out->summaries,
                                    manager_->SummariesFor(table_->id(), row));
      // Attachment metadata: column positions in the scan output equal base
      // table positions. Archived annotations stay out of the pipeline.
      for (const ann::Attachment& att : store_->OnRow(table_->id(), row)) {
        if (store_->IsArchived(att.annotation)) continue;
        out->attachments.push_back(core::AttachmentInfo{att.annotation, att.columns});
      }
    }
  }
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
