// Order-by: materializes and sorts; summaries ride along unchanged. Sort
// keys may be arbitrary expressions, each ascending or descending. The sort
// is stable, so equal keys preserve child order (deterministic results).

#ifndef INSIGHTNOTES_EXEC_SORT_H_
#define INSIGHTNOTES_EXEC_SORT_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

struct SortKey {
  rel::ExprPtr expr;
  bool ascending = true;
};

class SortOperator final : public Operator {
 public:
  SortOperator(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Sort"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<core::AnnotatedTuple> results_;
  size_t cursor_ = 0;
};

/// LIMIT n.
class LimitOperator final : public Operator {
 public:
  LimitOperator(std::unique_ptr<Operator> child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Limit(" + std::to_string(limit_) + ")"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override {
    return std::min(limit_, child_->EstimatedRows());
  }

 protected:
  Status OpenImpl() override {
    produced_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t produced_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_SORT_H_
