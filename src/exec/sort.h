// Order-by: materializes and sorts; summaries ride along unchanged. Sort
// keys may be arbitrary expressions, each ascending or descending. The sort
// is stable, so equal keys preserve child order (deterministic results).

#ifndef INSIGHTNOTES_EXEC_SORT_H_
#define INSIGHTNOTES_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

struct SortKey {
  rel::ExprPtr expr;
  bool ascending = true;
};

class SortOperator final : public Operator {
 public:
  SortOperator(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  Status Open() override;
  Result<bool> Next(core::AnnotatedTuple* out) override;
  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Sort"; }
  void SetTraceSink(TraceSink sink) override {
    child_->SetTraceSink(sink);
    trace_ = std::move(sink);
  }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<core::AnnotatedTuple> results_;
  size_t cursor_ = 0;
};

/// LIMIT n.
class LimitOperator final : public Operator {
 public:
  LimitOperator(std::unique_ptr<Operator> child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    produced_ = 0;
    return child_->Open();
  }
  Result<bool> Next(core::AnnotatedTuple* out) override;
  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Limit(" + std::to_string(limit_) + ")"; }
  void SetTraceSink(TraceSink sink) override {
    child_->SetTraceSink(sink);
    trace_ = std::move(sink);
  }

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t produced_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_SORT_H_
