// Order-by: materializes and sorts; summaries ride along unchanged. Sort
// keys may be arbitrary expressions, each ascending or descending. The sort
// is stable, so equal keys preserve child order (deterministic results).
//
// Parallel shape: per-worker PartialSortOperators evaluate the full key
// list (expressions and SUMMARY_COUNT specs) per tuple, sort their local
// run, and publish it to a shared PartialSortState; SortMergeOperator
// k-way-merges the runs above the gather. The run comparator breaks key
// ties by (morsel, position-in-morsel) — the tuple's rank in the serial
// input stream — so the merged order is exactly what the serial cascade of
// stable sorts produces.

#ifndef INSIGHTNOTES_EXEC_SORT_H_
#define INSIGHTNOTES_EXEC_SORT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/operator.h"
#include "exec/parallel.h"
#include "exec/summary_filter.h"
#include "rel/expression.h"
#include "rel/index.h"

namespace insightnotes::exec {

struct SortKey {
  rel::ExprPtr expr;
  bool ascending = true;
};

class SortOperator final : public Operator {
 public:
  SortOperator(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Sort"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<SortKey> keys_;
  std::vector<core::AnnotatedTuple> results_;
  size_t cursor_ = 0;
};

/// One ORDER BY key of the parallel sort, in significance order (first =
/// most significant). Either a bound expression or a SUMMARY_COUNT spec.
struct ParallelSortKey {
  rel::ExprPtr expr;                       // Null when `spec` is set.
  std::unique_ptr<SummaryCountSpec> spec;  // SUMMARY_COUNT(...) key.
  bool ascending = true;
};

/// One tuple of a per-worker sorted run: the precomputed key values plus
/// the tuple's serial rank (morsel, position within the morsel).
struct SortRunEntry {
  std::vector<rel::Value> keys;  // Significance order.
  uint64_t morsel = 0;
  uint32_t pos = 0;
  core::AnnotatedTuple tuple;
};

/// Strict weak order over run entries: lexicographic over the keys with
/// per-key direction, then the serial rank. Because the rank is unique,
/// this is a total order — the merged sequence is independent of how
/// tuples were partitioned into runs, and equals the serial stable-sort
/// output.
class SortRunLess {
 public:
  explicit SortRunLess(const std::vector<bool>* ascending)
      : ascending_(ascending) {}

  bool operator()(const SortRunEntry& a, const SortRunEntry& b) const {
    rel::ValueLess less;
    for (size_t k = 0; k < ascending_->size(); ++k) {
      if (less(a.keys[k], b.keys[k])) return (*ascending_)[k];
      if (less(b.keys[k], a.keys[k])) return !(*ascending_)[k];
    }
    if (a.morsel != b.morsel) return a.morsel < b.morsel;
    return a.pos < b.pos;
  }

 private:
  const std::vector<bool>* ascending_;
};

/// Shared sink of the parallel sort shape: one sorted run per worker.
class PartialSortState final : public SharedPlanState {
 public:
  Status Reset() override;
  void Publish(std::vector<SortRunEntry>&& run);
  std::vector<std::vector<SortRunEntry>> Take();

 private:
  std::mutex mutex_;
  std::vector<std::vector<SortRunEntry>> runs_;
};

/// Shared k-th-candidate bound of an `ORDER BY ... LIMIT k` parallel sort.
///
/// A worker whose local top-k heap is full publishes its heap root (its
/// local k-th candidate, keys + serial rank, no tuple): the worker already
/// holds k entries that sort at or before the root, so no entry sorting
/// strictly after any published root can be part of the global top k.
/// The bound keeps the minimum over everything published — it only ever
/// tightens — and other workers consult it to skip rows without storing
/// them. Because SortRunLess is a *total* order (the serial rank breaks
/// key ties), pruning on "strictly after the bound" can never discard an
/// entry the serial `Sort + Limit` cascade would have emitted: the pruned
/// and the kept side of the bound are disjoint by trichotomy.
class TopKBound final : public SharedPlanState {
 public:
  TopKBound(size_t limit, std::vector<bool> ascending)
      : limit_(limit), ascending_(std::move(ascending)) {}

  Status Reset() override;
  size_t limit() const { return limit_; }

  /// Publishes `candidate` as a worker's current k-th entry; keeps it only
  /// if it is strictly tighter (sorts before the held bound). The
  /// candidate's tuple payload is not copied. Returns true on tightening.
  bool Tighten(const SortRunEntry& candidate);

  /// Refreshes a worker's cached copy of the bound. `version` is the
  /// caller's last-seen bound version (0 initially); on change the bound's
  /// keys and rank are copied into `out` and true is returned.
  bool Refresh(uint64_t* version, SortRunEntry* out) const;

 private:
  const size_t limit_;
  const std::vector<bool> ascending_;
  mutable std::mutex mutex_;
  // Readers poll version_ (one relaxed-ish atomic load per row) and only
  // take the mutex when it moved. 0 = no bound published yet.
  std::atomic<uint64_t> version_{0};
  SortRunEntry bound_;  // Guarded by mutex_; keys + rank only.
};

/// Per-worker sort: drains its pipeline, evaluates the key list per tuple,
/// sorts the local run, and publishes it; emits no batches itself.
///
/// With a TopKBound (`ORDER BY ... LIMIT k` pushdown) the worker keeps a
/// size-k max-heap instead of the full run: rows sorting after the heap
/// root (once full) or after the shared bound are dropped — counted in
/// `rows_pruned` — and the heap root is published to the bound so other
/// workers prune too.
class PartialSortOperator final : public Operator {
 public:
  PartialSortOperator(std::unique_ptr<Operator> child,
                      std::vector<ParallelSortKey> keys,
                      std::shared_ptr<PartialSortState> sink,
                      std::shared_ptr<TopKBound> bound = nullptr);

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override {
    ReleaseMemory();  // Previous execution's run charges.
    return child_->Open();
  }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  Status BuildEntry(const core::AnnotatedBatch& batch, size_t i,
                    SortRunEntry* entry);
  Status DrainUnbounded(std::vector<SortRunEntry>* run);
  Status DrainTopK(std::vector<SortRunEntry>* run);

  std::unique_ptr<Operator> child_;
  std::vector<ParallelSortKey> keys_;
  std::vector<bool> ascending_;  // Direction per key, for the comparator.
  std::shared_ptr<PartialSortState> sink_;
  std::shared_ptr<TopKBound> bound_;  // Null when no LIMIT was pushed down.
};

/// Final k-way merge of the per-worker sorted runs above the gather. With
/// a pushed-down LIMIT the merge stops after emitting `limit` rows.
class SortMergeOperator final : public Operator {
 public:
  /// `label` names the key list for EXPLAIN (built by the planner);
  /// `ascending` gives the per-key directions in significance order.
  /// `limit` of SIZE_MAX means "merge everything".
  SortMergeOperator(std::unique_ptr<Operator> child, std::vector<bool> ascending,
                    std::string label, std::shared_ptr<PartialSortState> source,
                    size_t limit = SIZE_MAX);

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "SortMerge(" + label_ + ")"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override {
    return std::min(limit_, child_->EstimatedRows());
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<bool> ascending_;
  std::string label_;
  std::shared_ptr<PartialSortState> source_;
  size_t limit_;

  std::vector<core::AnnotatedTuple> results_;
  size_t cursor_ = 0;
};

/// LIMIT n.
class LimitOperator final : public Operator {
 public:
  LimitOperator(std::unique_ptr<Operator> child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Limit(" + std::to_string(limit_) + ")"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override {
    return std::min(limit_, child_->EstimatedRows());
  }

 protected:
  Status OpenImpl() override {
    produced_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t produced_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_SORT_H_
