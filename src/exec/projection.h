// Projection — the semantically richest summary operator (Figure 2 step 1,
// Theorems 1 & 2 of the full paper). Besides projecting the data columns it
// eliminates the effect of every annotation attached exclusively to
// projected-out columns: classifier counts are decremented, snippets of
// dropped documents deleted, cluster members removed with representative
// re-election. The planner places projections *before* merge operators so
// equivalent plans propagate identical summaries.

#ifndef INSIGHTNOTES_EXEC_PROJECTION_H_
#define INSIGHTNOTES_EXEC_PROJECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

struct ProjectionItem {
  rel::ExprPtr expr;        // Evaluated against the child tuple.
  std::string output_name;  // Bare output column name.
  std::string qualifier;    // Output qualifier (may be empty).
  rel::ValueType type = rel::ValueType::kNull;  // Best-effort static type.
};

class ProjectOperator final : public Operator {
 public:
  /// `trim_annotations` selects between the two projection roles:
  ///  * true — the Theorem-1 normalization projection: annotations attached
  ///    only to dropped columns are *eliminated* from the summaries. The
  ///    planner places these below every merge operator.
  ///  * false — a plumbing projection (e.g. Figure 2 step 4, dropping the
  ///    join column s.x after the join): summaries propagate unchanged;
  ///    coverage of fully-dropped columns degrades to whole-row.
  ProjectOperator(std::unique_ptr<Operator> child, std::vector<ProjectionItem> items,
                  bool trim_annotations = true);

  /// Convenience: project child columns by (qualified) name.
  static Result<std::unique_ptr<ProjectOperator>> FromColumns(
      std::unique_ptr<Operator> child, const std::vector<std::string>& names,
      bool trim_annotations = true);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  /// Native batch path: one child batch in, one (same-morsel) batch out.
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  /// Trims/remaps annotations and projects the data values of one tuple.
  Status ProjectTuple(core::AnnotatedTuple* in, core::AnnotatedTuple* out) const;


  std::unique_ptr<Operator> child_;
  std::vector<ProjectionItem> items_;
  rel::Schema schema_;
  // kept_[c]: output item indexes that reference child column c.
  std::vector<std::vector<size_t>> kept_positions_;
  std::vector<size_t> kept_columns_;  // Child columns referenced by any item.
  bool trim_annotations_;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_PROJECTION_H_
