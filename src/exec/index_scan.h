// Index-backed table access: probes a table's secondary index (in-memory
// OrderedIndex or persistent B+-tree, see rel::TableIndex) for an equality
// key or an inclusive [lo, hi] range and emits the matching rows — with
// the same summary objects and attachment metadata a SeqScan would attach
// — in ascending RowId order. Because RowIds are assigned in insertion
// order and a SeqScan emits live rows ascending, the index scan's output
// is exactly the SeqScan's output restricted to the matching rows: stack
// the ORIGINAL filter predicates on top (the planner always keeps them as
// residuals) and the plan is byte-identical to the full-scan plan while
// touching only the probed subset. Strict bounds and NULL/type-coercion
// edge cases are therefore safe by construction — the probe may
// over-approximate, the residual filter decides.

#ifndef INSIGHTNOTES_EXEC_INDEX_SCAN_H_
#define INSIGHTNOTES_EXEC_INDEX_SCAN_H_

#include <string>
#include <vector>

#include "annotation/annotation_store.h"
#include "core/summary_manager.h"
#include "exec/operator.h"
#include "rel/table.h"

namespace insightnotes::exec {

/// What to probe: an equality key, or an inclusive range with either bound
/// optional. Strict predicate bounds are widened to inclusive ones — the
/// residual filter above discards the boundary rows.
struct IndexProbeSpec {
  size_t column = 0;        // Base-table column position of the index.
  std::string column_name;  // Display only; ToString falls back to colN.
  bool has_eq = false;
  rel::Value eq;
  bool has_lo = false;      // Ignored when has_eq.
  rel::Value lo;
  bool has_hi = false;
  rel::Value hi;

  std::string ToString() const;
};

class IndexScanOperator final : public Operator {
 public:
  /// `table` must have an index on `probe.column` (Table::CreateIndex) by
  /// the time Open runs; the probe happens at Open so retained plans
  /// (zoom-in re-execution) see the table's current contents.
  IndexScanOperator(const rel::Table* table, std::string alias,
                    core::SummaryManager* manager, const ann::AnnotationStore* store,
                    IndexProbeSpec probe, bool with_summaries = true);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override {
    return "IndexScan(" + alias_ + "." + probe_.ToString() + ")";
  }
  size_t EstimatedRows() const override {
    return static_cast<size_t>(table_->NumRows());
  }

  /// See SeqScanOperator::EnableRankStamping. An index scan's emission
  /// positions are a monotone relabeling of the SeqScan positions of the
  /// same rows, so rank comparisons are preserved.
  void EnableRankStamping() { stamp_ranks_ = true; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  const rel::Table* table_;
  std::string alias_;
  core::SummaryManager* manager_;
  const ann::AnnotationStore* store_;
  IndexProbeSpec probe_;
  bool with_summaries_;
  bool stamp_ranks_ = false;
  rel::Schema schema_;

  // Pinned engine epoch captured at Open; null = live reads. See
  // SeqScanOperator::snapshot_.
  std::shared_ptr<const core::EngineSnapshot> snapshot_;

  std::vector<rel::RowId> rows_;  // Probe result, ascending RowId.
  size_t cursor_ = 0;
};

/// Runs `probe` against `table`'s index on probe.column, appending matching
/// live rows to `out` in ascending RowId order. Shared by IndexScanOperator
/// and the parallel executor's morsel source. InvalidArgument if the table
/// has no index on that column.
Status ProbeIndex(const rel::Table& table, const IndexProbeSpec& probe,
                  std::vector<rel::RowId>* out);

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_INDEX_SCAN_H_
