// Scripted executor faults, mirroring storage/fault_injection.h for the
// query side: a FaultInjectingOperator wraps one worker pipeline stage and
// fails, throws or stalls at the Nth NextBatch call on a chosen worker.
// Tests sweep operator types x parallelism x fault points the way the WAL
// crash sweeps do, proving that any mid-morsel worker failure surfaces as
// a clean non-OK Status (first error in morsel order), leaks no workers,
// and leaves the engine answering the next query byte-identically.
//
// The script is configured before execution and read-only while workers
// run; only the fired counter mutates (atomically), so concurrent worker
// pipelines can consult it without locks.

#ifndef INSIGHTNOTES_EXEC_FAULT_INJECTION_H_
#define INSIGHTNOTES_EXEC_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace insightnotes::exec {

enum class ExecFaultAction {
  kError,  // Return Status::Internal from NextBatch.
  kThrow,  // Throw std::runtime_error (exception-containment coverage).
  kStall,  // Sleep stall_ms, then proceed normally (deadline coverage).
};

/// One scripted fault: fire when worker `worker` makes its `nth` (1-based)
/// NextBatch call through its FaultInjectingOperator.
struct ExecFault {
  size_t worker = 0;
  uint64_t nth_next_batch = 1;
  ExecFaultAction action = ExecFaultAction::kError;
  int64_t stall_ms = 0;  // kStall only.
};

/// Shared fault script consulted by every FaultInjectingOperator of a
/// plan. Configure before Open; Reset (or ClearFired) between executions.
class ExecFaultScript {
 public:
  void AddFault(ExecFault fault) { faults_.push_back(fault); }
  void Clear() {
    faults_.clear();
    fired_.store(0, std::memory_order_relaxed);
  }
  /// Re-arms the script for another execution without changing the faults.
  void ClearFired() { fired_.store(0, std::memory_order_relaxed); }

  /// Times a scripted fault fired (for sweep assertions).
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Consulted on each NextBatch: returns the matching fault or nullptr.
  /// Marks the fault fired. Thread-safe (faults_ is immutable here).
  const ExecFault* Match(size_t worker, uint64_t call_index) {
    for (const ExecFault& fault : faults_) {
      if (fault.worker == worker && fault.nth_next_batch == call_index) {
        fired_.fetch_add(1, std::memory_order_relaxed);
        return &fault;
      }
    }
    return nullptr;
  }

 private:
  std::vector<ExecFault> faults_;
  std::atomic<uint64_t> fired_{0};
};

/// Transparent pipeline stage that executes the script: passes batches
/// through unchanged unless a fault matches (worker, NextBatch call #).
/// The planner inserts one per worker pipeline via
/// PlannerOptions::wrap_worker_pipeline.
class FaultInjectingOperator final : public Operator {
 public:
  FaultInjectingOperator(std::unique_ptr<Operator> child,
                         std::shared_ptr<ExecFaultScript> script, size_t worker)
      : child_(std::move(child)), script_(std::move(script)), worker_(worker) {}

  const rel::Schema& OutputSchema() const override {
    return child_->OutputSchema();
  }
  std::string Name() const override {
    return "FaultInject(worker " + std::to_string(worker_) + ")";
  }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override {
    calls_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override {
    return child_->Next(out);
  }
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::shared_ptr<ExecFaultScript> script_;
  size_t worker_;
  uint64_t calls_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_FAULT_INJECTION_H_
