#include "exec/nested_loop_join.h"

namespace insightnotes::exec {

NestedLoopJoinOperator::NestedLoopJoinOperator(std::unique_ptr<Operator> left,
                                               std::unique_ptr<Operator> right,
                                               rel::ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      schema_(rel::Schema::Concat(left_->OutputSchema(), right_->OutputSchema())) {}

Status NestedLoopJoinOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(left_->Open());
  INSIGHTNOTES_RETURN_IF_ERROR(right_->Open());
  right_tuples_.clear();
  right_index_ = 0;
  left_valid_ = false;
  ReleaseMemory();
  right_tuples_.reserve(right_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, right_->NextBatch(&batch));
    if (!more) break;
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(core::ApproxBytes(batch)));
    for (core::AnnotatedTuple& tuple : batch.tuples) {
      right_tuples_.push_back(std::move(tuple));
    }
  }
  return Status::OK();
}

Result<bool> NestedLoopJoinOperator::NextImpl(core::AnnotatedTuple* out) {
  while (true) {
    if (!left_valid_ || right_index_ >= right_tuples_.size()) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      left_valid_ = true;
      right_index_ = 0;
    }
    while (right_index_ < right_tuples_.size()) {
      const core::AnnotatedTuple& right_tuple = right_tuples_[right_index_++];
      rel::Tuple combined = rel::Tuple::Concat(current_left_.tuple, right_tuple.tuple);
      INSIGHTNOTES_ASSIGN_OR_RETURN(bool match, predicate_->EvaluateBool(combined));
      if (!match) continue;
      *out = current_left_.Clone();
      INSIGHTNOTES_RETURN_IF_ERROR(core::MergeAnnotatedTuples(out, right_tuple));
      Trace(*out);
      return true;
    }
  }
}

}  // namespace insightnotes::exec
