#include "exec/index_scan.h"

#include <algorithm>

#include "core/engine_snapshot.h"

namespace insightnotes::exec {

std::string IndexProbeSpec::ToString() const {
  std::string out =
      column_name.empty() ? "col" + std::to_string(column) : column_name;
  if (has_eq) return out + " = " + eq.ToString();
  std::string lo_s = has_lo ? lo.ToString() : "-inf";
  std::string hi_s = has_hi ? hi.ToString() : "+inf";
  return out + " in [" + lo_s + ", " + hi_s + "]";
}

Status ProbeIndex(const rel::Table& table, const IndexProbeSpec& probe,
                  std::vector<rel::RowId>* out) {
  // CreateIndex rebuilds the index structure under the table's exclusive
  // latch; the shared latch keeps the probe consistent against it.
  auto latch = table.ReadLock();
  const rel::TableIndex* index = table.IndexOn(probe.column);
  if (index == nullptr) {
    return Status::InvalidArgument("table '" + table.name() + "' has no index on column " +
                                   std::to_string(probe.column));
  }
  size_t first = out->size();
  if (probe.has_eq) {
    INSIGHTNOTES_RETURN_IF_ERROR(index->LookupInto(probe.eq, out));
  } else {
    INSIGHTNOTES_RETURN_IF_ERROR(
        index->RangeInto(probe.has_lo ? &probe.lo : nullptr,
                         probe.has_hi ? &probe.hi : nullptr, out));
  }
  // The index yields rows grouped by key; re-establish global RowId order
  // so the emission order is a subsequence of the SeqScan order.
  std::sort(out->begin() + first, out->end());
  return Status::OK();
}

IndexScanOperator::IndexScanOperator(const rel::Table* table, std::string alias,
                                     core::SummaryManager* manager,
                                     const ann::AnnotationStore* store,
                                     IndexProbeSpec probe, bool with_summaries)
    : table_(table),
      alias_(std::move(alias)),
      manager_(manager),
      store_(store),
      probe_(std::move(probe)),
      with_summaries_(with_summaries),
      schema_(table->schema().WithQualifier(alias_.empty() ? table->name() : alias_)) {
  if (alias_.empty()) alias_ = table->name();
}

Status IndexScanOperator::OpenImpl() {
  rows_.clear();
  cursor_ = 0;
  snapshot_ = query_context() != nullptr ? query_context()->snapshot() : nullptr;
  if (snapshot_ != nullptr && !snapshot_->CoversTable(table_->id())) {
    snapshot_ = nullptr;  // Table the pinned epoch predates: live reads.
  }
  INSIGHTNOTES_RETURN_IF_ERROR(ProbeIndex(*table_, probe_, &rows_));
  if (snapshot_ != nullptr) {
    // The probe runs against the live index, which may already contain
    // rows inserted after the pinned epoch; cut back to the epoch's row
    // bound (rows_ is sorted ascending).
    rel::RowId bound = snapshot_->VisibleRows(table_->id());
    auto first_invisible =
        std::lower_bound(rows_.begin(), rows_.end(), bound);
    rows_.erase(first_invisible, rows_.end());
  }
  return Status::OK();
}

Result<bool> IndexScanOperator::NextImpl(core::AnnotatedTuple* out) {
  while (cursor_ < rows_.size()) {
    size_t position = cursor_;
    rel::RowId row = rows_[cursor_++];
    if (!table_->IsLive(row)) continue;  // Deleted since the probe.
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Tuple tuple, table_->Get(row));
    *out = core::AnnotatedTuple(std::move(tuple));
    if (stamp_ranks_) out->order_ranks.assign(1, static_cast<uint32_t>(position));
    if (with_summaries_) {
      if (snapshot_ != nullptr) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(
            out->summaries, snapshot_->SummariesFor(table_->id(), row));
        snapshot_->AppendAttachments(table_->id(), row, &out->attachments);
      } else {
        INSIGHTNOTES_ASSIGN_OR_RETURN(out->summaries,
                                      manager_->SummariesFor(table_->id(), row));
        for (const ann::Attachment& att : store_->OnRow(table_->id(), row)) {
          if (store_->IsArchived(att.annotation)) continue;
          out->attachments.push_back(core::AttachmentInfo{att.annotation, att.columns});
        }
      }
    }
    Trace(*out);
    return true;
  }
  return false;
}

}  // namespace insightnotes::exec
