// Duplicate elimination: value-equal tuples collapse to one output whose
// summary objects merge the duplicates' summaries (shared annotations
// counted once).
//
// Like aggregation, distinct has a serial shape (DistinctOperator) and a
// parallel shape: per-worker PartialDistinctOperators collapse each morsel
// locally and publish the per-morsel distinct sets to a shared
// PartialDistinctState; DistinctMergeOperator folds them above the gather
// in ascending morsel order, re-associating the serial left-fold so the
// surviving tuples, their first-seen order, and their merged summaries are
// byte-identical to serial execution.

#ifndef INSIGHTNOTES_EXEC_DISTINCT_H_
#define INSIGHTNOTES_EXEC_DISTINCT_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/summary_manager.h"
#include "exec/operator.h"
#include "exec/parallel.h"

namespace insightnotes::exec {

class DistinctOperator final : public Operator {
 public:
  explicit DistinctOperator(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Distinct"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<core::AnnotatedTuple> results_;  // First-seen order.
  size_t cursor_ = 0;
};

/// Shared sink of the parallel distinct shape: one distinct set per
/// morsel. Unlike aggregation, attachment metadata keeps its per-column
/// coverage (the output schema is the input schema).
class PartialDistinctState final : public SharedPlanState {
 public:
  struct Entry {
    rel::Tuple tuple;
    core::PartialSummaryState summary;
  };
  struct MorselPartial {
    uint64_t morsel = 0;
    std::vector<Entry> entries;  // First-seen order within the morsel.
  };

  Status Reset() override;
  void Publish(MorselPartial&& partial);
  std::vector<MorselPartial> Take();

 private:
  std::mutex mutex_;
  std::vector<MorselPartial> partials_;
};

/// Per-worker duplicate elimination: collapses each morsel batch into a
/// local distinct set and publishes it to the shared sink; emits no
/// batches itself.
class PartialDistinctOperator final : public Operator {
 public:
  PartialDistinctOperator(std::unique_ptr<Operator> child,
                          std::shared_ptr<PartialDistinctState> sink)
      : child_(std::move(child)), sink_(std::move(sink)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "PartialDistinct"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override {
    ReleaseMemory();  // Previous execution's distinct-set charges.
    return child_->Open();
  }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::shared_ptr<PartialDistinctState> sink_;
};

/// Final merge above the gather: folds the per-morsel distinct sets in
/// ascending morsel order into the global first-seen-order result.
class DistinctMergeOperator final : public Operator {
 public:
  DistinctMergeOperator(std::unique_ptr<Operator> child,
                        std::shared_ptr<PartialDistinctState> source)
      : child_(std::move(child)), source_(std::move(source)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "DistinctMerge"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::shared_ptr<PartialDistinctState> source_;

  std::vector<PartialDistinctState::Entry> results_;  // First-seen order.
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_DISTINCT_H_
