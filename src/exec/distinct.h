// Duplicate elimination: value-equal tuples collapse to one output whose
// summary objects merge the duplicates' summaries (shared annotations
// counted once).

#ifndef INSIGHTNOTES_EXEC_DISTINCT_H_
#define INSIGHTNOTES_EXEC_DISTINCT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace insightnotes::exec {

class DistinctOperator final : public Operator {
 public:
  explicit DistinctOperator(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "Distinct"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<core::AnnotatedTuple> results_;  // First-seen order.
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_DISTINCT_H_
