// RestoreOrderOperator: re-establishes the canonical FROM-order output of
// a join-reordered plan. The leaf scans of a reordered plan stamp each
// tuple's order_ranks with their emission positions; joins concatenate
// them (probe side first), so a tuple reaching this operator carries one
// rank per base table in *join contribution* order. The canonical serial
// left-deep FROM-order plan emits tuples exactly in lexicographic order of
// the FROM-order rank vector (hash-join probe matches stream in build-scan
// order, filters preserve order, and each source-row combination appears
// at most once — rank vectors are unique). So sorting the reordered plan's
// output by the ranks permuted back into FROM order reproduces the
// canonical output byte for byte; the ranks are cleared on emit.
//
// The planner places this operator above all per-tuple filters (residual
// and summary) and below aggregation / sort / distinct / final projection,
// and above the Gather in parallel plans.

#ifndef INSIGHTNOTES_EXEC_RESTORE_ORDER_H_
#define INSIGHTNOTES_EXEC_RESTORE_ORDER_H_

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace insightnotes::exec {

class RestoreOrderOperator final : public Operator {
 public:
  /// `key_order[j]` = position within order_ranks of FROM-table j's rank:
  /// with join order pi (a permutation of FROM slots), key_order[j] is the
  /// index k such that pi[k] == j. Comparison is lexicographic over
  /// ranks[key_order[0]], ranks[key_order[1]], ...
  RestoreOrderOperator(std::unique_ptr<Operator> child, std::vector<size_t> key_order)
      : child_(std::move(child)), key_order_(std::move(key_order)) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override { return "RestoreOrder"; }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> key_order_;
  std::vector<core::AnnotatedTuple> results_;
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_RESTORE_ORDER_H_
