#include "exec/operator.h"

#include "common/clock.h"

namespace insightnotes::exec {

Status Operator::Open() {
  next_calls_ = 0;
  INSIGHTNOTES_RETURN_IF_ERROR(CheckInterrupt());
  if (!metrics_enabled_) return OpenImpl();
  Stopwatch watch;
  Status status = OpenImpl();
  metrics_.wall_ns += static_cast<uint64_t>(watch.ElapsedNanos());
  return status;
}

Result<bool> Operator::Next(core::AnnotatedTuple* out) {
  if (++next_calls_ % kInterruptStride == 0) {
    INSIGHTNOTES_RETURN_IF_ERROR(CheckInterrupt());
  }
  if (!metrics_enabled_) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, NextImpl(out));
    if (more) ++metrics_.rows_out;
    return more;
  }
  Stopwatch watch;
  Result<bool> more = NextImpl(out);
  metrics_.wall_ns += static_cast<uint64_t>(watch.ElapsedNanos());
  if (more.ok() && *more) ++metrics_.rows_out;
  return more;
}

Result<bool> Operator::NextBatch(core::AnnotatedBatch* out) {
  out->Clear();
  INSIGHTNOTES_RETURN_IF_ERROR(CheckInterrupt());
  Result<bool> more = [&]() -> Result<bool> {
    if (!metrics_enabled_) return NextBatchImpl(out);
    Stopwatch watch;
    Result<bool> r = NextBatchImpl(out);
    metrics_.wall_ns += static_cast<uint64_t>(watch.ElapsedNanos());
    return r;
  }();
  if (more.ok() && *more) {
    ++metrics_.batches_out;
    metrics_.rows_out += out->tuples.size();
  }
  return more;
}

Status Operator::Close() {
  // Parent-first so operators holding in-flight worker jobs (gather, join
  // build) quiesce before the shared state and children they reference are
  // torn down; memory goes back to the budget last.
  Status status = CloseImpl();
  for (Operator* child : Children()) {
    Status child_status = child->Close();
    if (status.ok()) status = child_status;
  }
  ReleaseMemory();
  return status;
}

Result<bool> Operator::NextBatchImpl(core::AnnotatedBatch* out) {
  while (out->tuples.size() < kDefaultBatchSize) {
    core::AnnotatedTuple tuple;
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, NextImpl(&tuple));
    if (!more) break;
    out->tuples.push_back(std::move(tuple));
  }
  return !out->tuples.empty();
}

}  // namespace insightnotes::exec
