#include "exec/fault_injection.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace insightnotes::exec {

Result<bool> FaultInjectingOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  ++calls_;
  if (script_ != nullptr) {
    const ExecFault* fault = script_->Match(worker_, calls_);
    if (fault != nullptr) {
      switch (fault->action) {
        case ExecFaultAction::kError:
          return Status::Internal(
              "injected fault: worker " + std::to_string(worker_) +
              " failed at NextBatch call " + std::to_string(calls_));
        case ExecFaultAction::kThrow:
          throw std::runtime_error(
              "injected fault: worker " + std::to_string(worker_) +
              " threw at NextBatch call " + std::to_string(calls_));
        case ExecFaultAction::kStall:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fault->stall_ms));
          break;  // Stalls proceed; a deadline check should catch them.
      }
    }
  }
  return child_->NextBatch(out);
}

}  // namespace insightnotes::exec
