// Hash equi-join with summary merge (Figure 2 step 3): for each matching
// pair, counterpart summary objects of the two inputs are combined without
// double counting shared annotations; objects without a counterpart
// propagate unchanged.

#ifndef INSIGHTNOTES_EXEC_HASH_JOIN_H_
#define INSIGHTNOTES_EXEC_HASH_JOIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"
#include "rel/index.h"

namespace insightnotes::exec {

class HashJoinOperator final : public Operator {
 public:
  /// Joins on left_key == right_key (each evaluated against its side).
  HashJoinOperator(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
                   rel::ExprPtr left_key, rel::ExprPtr right_key);

  Status Open() override;
  Result<bool> Next(core::AnnotatedTuple* out) override;
  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  void SetTraceSink(TraceSink sink) override {
    left_->SetTraceSink(sink);
    right_->SetTraceSink(sink);
    trace_ = std::move(sink);
  }

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  rel::ExprPtr left_key_;
  rel::ExprPtr right_key_;
  rel::Schema schema_;

  // Build side (right), keyed by join value.
  std::unordered_map<rel::Value, std::vector<core::AnnotatedTuple>, rel::ValueHash,
                     rel::ValueEq>
      build_;
  // Probe state.
  core::AnnotatedTuple current_left_;
  const std::vector<core::AnnotatedTuple>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool left_valid_ = false;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_HASH_JOIN_H_
