// Hash equi-join with summary merge (Figure 2 step 3): for each matching
// pair, counterpart summary objects of the two inputs are combined without
// double counting shared annotations; objects without a counterpart
// propagate unchanged.
//
// The build side lives in a HashJoinBuildState: the input is materialized
// once in input order, then partitioned by hash(key) % P — each partition
// built by one worker, lock-free — and probed partition-wise. Because the
// partition maps store *indexes into the ordered row vector*, appended by
// a single worker scanning in input order, each key's match list is in
// serial build-insertion order regardless of P: probes produce exactly the
// serial operator's output. The serial HashJoinOperator owns a
// single-partition state; the parallel planner shares one multi-partition
// state across P HashJoinProbeOperators (see exec/parallel.h).

#ifndef INSIGHTNOTES_EXEC_HASH_JOIN_H_
#define INSIGHTNOTES_EXEC_HASH_JOIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/parallel.h"
#include "rel/expression.h"
#include "rel/index.h"

namespace insightnotes::exec {

/// Materialized, partitioned build side of a hash join. Reset drains the
/// build input (serially — it owns the buffer-pool access), then builds
/// the partitions, one pool job per partition when a pool is given.
/// Find/Row are safe for concurrent readers once Reset returned.
class HashJoinBuildState final : public SharedPlanState {
 public:
  /// `num_partitions` >= 1; `pool` may be null (partitions built inline).
  HashJoinBuildState(std::unique_ptr<Operator> input, rel::ExprPtr key,
                     size_t num_partitions, ThreadPool* pool);

  Status Reset() override;
  /// Forwards the context into the build input subtree and arms this
  /// state's memory reservation (label "HashJoinBuild(<key>)").
  void AttachQueryContext(std::shared_ptr<QueryContext> context) override;

  /// Match row indexes for `key` in build-input order; null when none.
  /// NULL keys never match.
  const std::vector<size_t>* Find(const rel::Value& key) const;

  const core::AnnotatedTuple& Row(size_t index) const { return rows_[index]; }
  const rel::Schema& schema() const { return input_->OutputSchema(); }
  const std::string& key_name() const { return key_name_; }
  size_t num_partitions() const { return num_partitions_; }
  Operator* input() { return input_.get(); }

 private:
  using PartitionMap = std::unordered_map<rel::Value, std::vector<size_t>,
                                          rel::ValueHash, rel::ValueEq>;

  std::unique_ptr<Operator> input_;
  rel::ExprPtr key_;
  std::string key_name_;
  size_t num_partitions_;
  ThreadPool* pool_;

  std::shared_ptr<QueryContext> context_;  // Nullable.
  MemoryReservation build_reservation_;    // Charges rows_/keys_/partitions_.

  std::vector<core::AnnotatedTuple> rows_;  // Build input, input order.
  std::vector<rel::Value> keys_;            // Key per row (may be NULL).
  std::vector<size_t> hashes_;              // ValueHash per row.
  std::vector<PartitionMap> partitions_;
};

/// Probe stage over a shared (or owned) build state. Used per worker
/// pipeline by the parallel planner; Open does NOT reset the state (the
/// GatherOperator resets each shared state exactly once).
class HashJoinProbeOperator final : public Operator {
 public:
  /// `expose_build` lists the build input as a child (exactly one probe
  /// per shared state should, so trace/metrics visit the build once).
  HashJoinProbeOperator(std::unique_ptr<Operator> child,
                        std::shared_ptr<HashJoinBuildState> state,
                        rel::ExprPtr probe_key, bool expose_build);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  std::vector<Operator*> Children() override;
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }
  /// Also arms the shared build state when this probe exposes the build
  /// (exactly one probe per state does, so the state is attached once even
  /// when the gather does not know about it).
  void SetQueryContext(std::shared_ptr<QueryContext> context) override {
    Operator::SetQueryContext(context);
    if (expose_build_) state_->AttachQueryContext(context_);
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::shared_ptr<HashJoinBuildState> state_;
  rel::ExprPtr probe_key_;
  bool expose_build_;
  rel::Schema schema_;
  // Tuple-at-a-time adapter state (NextBatch is the native interface).
  core::AnnotatedBatch pending_;
  size_t pending_pos_ = 0;
};

class HashJoinOperator final : public Operator {
 public:
  /// Joins on left_key == right_key (each evaluated against its side).
  HashJoinOperator(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
                   rel::ExprPtr left_key, rel::ExprPtr right_key);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override;
  std::vector<Operator*> Children() override {
    return {left_.get(), state_->input()};
  }
  void SetQueryContext(std::shared_ptr<QueryContext> context) override {
    Operator::SetQueryContext(context);
    state_->AttachQueryContext(context_);
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> left_;
  rel::ExprPtr left_key_;
  std::shared_ptr<HashJoinBuildState> state_;  // Owned; single partition.
  rel::Schema schema_;

  // Probe state.
  core::AnnotatedTuple current_left_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool left_valid_ = false;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_HASH_JOIN_H_
