// Per-statement query lifecycle state: cooperative cancellation, a wall
// clock deadline and a shared memory budget, threaded through every
// operator in a plan (see Operator::SetQueryContext).
//
// The executor is morsel-driven and cooperative: nothing preempts a
// running worker. Instead the Open/Next/NextBatch wrappers call
// QueryContext::CheckInterrupt() at batch and morsel boundaries, so a
// cancelled / timed-out / over-budget query unwinds with a clean Status
// (kCancelled / kDeadlineExceeded / kResourceExhausted) within a bounded
// number of morsel boundaries — never a hang or a torn engine state.
// Memory accounting goes through per-operator MemoryReservations that
// batch charges against the shared atomic MemoryBudget in kChunk slabs,
// keeping the atomic off the per-row hot path.
//
// A QueryContext is owned by the session via shared_ptr and re-armed per
// statement (BeginStatement); retained plans (zoom-in re-execution) keep
// the context alive past the statement that created them.

#ifndef INSIGHTNOTES_EXEC_QUERY_CONTEXT_H_
#define INSIGHTNOTES_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace insightnotes::core {
class EngineSnapshot;
}  // namespace insightnotes::core

namespace insightnotes::exec {

/// Shared, thread-safe memory accountant for one statement. All workers of
/// a parallel plan reserve against the same budget; a limit of 0 means
/// unlimited (accounting still runs so EXPLAIN ANALYZE can report peaks).
class MemoryBudget {
 public:
  /// Sets the byte limit (0 = unlimited) and zeroes usage/peak. Bumps the
  /// epoch: reservations still holding bytes from before the reset (e.g. a
  /// retained plan from an earlier statement) are stale and must not
  /// release against the new accounting period.
  void Reset(size_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Attempts to reserve `bytes`; returns false if that would exceed the
  /// limit (the reservation is rolled back).
  bool TryReserve(size_t bytes) {
    size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit != 0 && now > limit) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    return true;
  }

  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t limit() const { return limit_.load(std::memory_order_relaxed); }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  /// High-water mark of reserved bytes since the last Reset.
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Accounting period id; bumped by Reset.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> limit_{0};
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> epoch_{0};
};

/// Per-operator (single-threaded) ledger against a shared MemoryBudget.
/// Charges accumulate locally and only hit the shared atomic when the
/// local slack runs out, in kChunk slabs — so per-row charging stays off
/// the contended cache line. Detached reservations still track bytes and
/// peaks (for EXPLAIN ANALYZE) but never fail.
class MemoryReservation {
 public:
  /// Slab size reserved from the shared budget at a time.
  static constexpr size_t kChunk = 64 * 1024;

  MemoryReservation() = default;
  ~MemoryReservation() { ReleaseAll(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// Points this ledger at `budget` (may be nullptr) and names the owning
  /// operator for the kResourceExhausted message. Releases any previous
  /// holdings first.
  void Attach(MemoryBudget* budget, std::string label) {
    ReleaseAll();
    budget_ = budget;
    label_ = std::move(label);
    epoch_ = budget != nullptr ? budget->epoch() : 0;
  }

  /// Records `bytes` of materialized state. Returns kResourceExhausted
  /// naming the operator if the shared budget cannot cover it.
  Status Charge(size_t bytes);

  /// Returns every reserved byte to the shared budget and zeroes the local
  /// ledger. Peak is preserved for metrics. Holdings from before a budget
  /// Reset are stale — the reset already zeroed them out of `used` — so
  /// they are dropped, not released (releasing would underflow the new
  /// accounting period).
  void ReleaseAll() {
    if (budget_ != nullptr && reserved_ > 0 && epoch_ == budget_->epoch()) {
      budget_->Release(reserved_);
    }
    reserved_ = 0;
    charged_ = 0;
  }

  /// Bytes currently charged by this operator.
  size_t charged() const { return charged_; }
  /// High-water mark of bytes charged by this operator.
  size_t peak() const { return peak_; }

 private:
  MemoryBudget* budget_ = nullptr;
  std::string label_;
  uint64_t epoch_ = 0;   // Budget epoch the holdings belong to.
  size_t charged_ = 0;   // Bytes the operator has recorded.
  size_t reserved_ = 0;  // Bytes actually taken from the shared budget.
  size_t peak_ = 0;
};

/// Cancellation flag + deadline + memory budget for one statement. Created
/// per session, re-armed per statement; safe to poll from every worker.
class QueryContext {
 public:
  /// Re-arms the context for a new statement: clears the cancellation
  /// flag, starts the deadline clock (`timeout_ms` 0 = no deadline) and
  /// resets the memory budget (`memory_limit_bytes` 0 = unlimited).
  void BeginStatement(int64_t timeout_ms, size_t memory_limit_bytes);

  /// Requests cancellation; the running plan unwinds with kCancelled at
  /// its next interrupt check.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Cooperative poll: OK while the statement may keep running, otherwise
  /// kCancelled or kDeadlineExceeded. Called by operator wrappers at batch
  /// and morsel boundaries; thread-safe.
  Status CheckInterrupt();

  MemoryBudget& budget() { return budget_; }

  /// Pins `snapshot` as the epoch this statement reads against (null =
  /// live engine reads). Set by Engine::Execute before Open and cleared
  /// after the plan fully drains; parallel workers only read it between
  /// those points, so the pool join orders the accesses.
  void SetSnapshot(std::shared_ptr<const core::EngineSnapshot> snapshot) {
    snapshot_ = std::move(snapshot);
  }

  const std::shared_ptr<const core::EngineSnapshot>& snapshot() const {
    return snapshot_;
  }

  /// Total interrupt checks since BeginStatement (all operators, all
  /// workers) — the denominator for "returns within N morsel boundaries".
  uint64_t cancel_checks() const {
    return checks_.load(std::memory_order_relaxed);
  }

  /// Test seam: trip cancellation when the `n`-th interrupt check runs
  /// (0 disables). Deterministic for serial plans, and a seeded "cancel
  /// somewhere mid-flight" point for parallel ones. Survives
  /// BeginStatement so it can be armed before the statement starts.
  void CancelAtCheck(uint64_t n) {
    cancel_at_check_.store(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  // steady_clock deadline in ns-since-epoch; 0 = no deadline.
  std::atomic<int64_t> deadline_ns_{0};
  int64_t timeout_ms_ = 0;  // For the kDeadlineExceeded message.
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> cancel_at_check_{0};
  MemoryBudget budget_;
  std::shared_ptr<const core::EngineSnapshot> snapshot_;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_QUERY_CONTEXT_H_
