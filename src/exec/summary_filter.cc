#include "exec/summary_filter.h"

#include <algorithm>

namespace insightnotes::exec {

Result<int64_t> SummaryCountSpec::Evaluate(const core::AnnotatedTuple& tuple) const {
  core::SummaryObject* object = tuple.FindSummary(instance);
  if (object == nullptr) return 0;
  if (label.empty()) return static_cast<int64_t>(object->NumAnnotations());
  int64_t count = 0;
  for (size_t c = 0; c < object->NumComponents(); ++c) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(std::string component_label,
                                  object->ComponentLabel(c));
    if (component_label != label) continue;
    INSIGHTNOTES_ASSIGN_OR_RETURN(auto ids, object->ZoomIn(c));
    count += static_cast<int64_t>(ids.size());
  }
  return count;
}

std::string SummaryCountSpec::ToString() const {
  return "SUMMARY_COUNT(" + instance + (label.empty() ? "" : ", '" + label + "'") +
         ")";
}

Result<bool> SummaryFilterOperator::Passes(const core::AnnotatedTuple& tuple) const {
  INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t count, spec_.Evaluate(tuple));
  switch (op_) {
    case rel::CompareOp::kEq:
      return count == threshold_;
    case rel::CompareOp::kNe:
      return count != threshold_;
    case rel::CompareOp::kLt:
      return count < threshold_;
    case rel::CompareOp::kLe:
      return count <= threshold_;
    case rel::CompareOp::kGt:
      return count > threshold_;
    case rel::CompareOp::kGe:
      return count >= threshold_;
  }
  return false;
}

Result<bool> SummaryFilterOperator::NextImpl(core::AnnotatedTuple* out) {
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass, Passes(*out));
    if (pass) {
      Trace(*out);
      return true;
    }
  }
}

Result<bool> SummaryFilterOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  size_t kept = 0;
  for (size_t i = 0; i < out->tuples.size(); ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass, Passes(out->tuples[i]));
    if (!pass) continue;
    if (kept != i) out->tuples[kept] = std::move(out->tuples[i]);
    Trace(out->tuples[kept]);
    ++kept;
  }
  out->tuples.resize(kept);
  return true;
}

std::string SummaryFilterOperator::Name() const {
  return "SummaryFilter(" + spec_.ToString() + " " +
         std::string(rel::CompareOpToString(op_)) + " " +
         std::to_string(threshold_) + ")";
}

Status SummarySortOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  results_.reserve(child_->EstimatedRows());
  std::vector<int64_t> keys;
  keys.reserve(child_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t key, spec_.Evaluate(in));
      keys.push_back(key);
      results_.push_back(std::move(in));
    }
  }
  std::vector<size_t> order(results_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ascending_ ? keys[a] < keys[b] : keys[a] > keys[b];
  });
  std::vector<core::AnnotatedTuple> sorted;
  sorted.reserve(results_.size());
  for (size_t i : order) sorted.push_back(std::move(results_[i]));
  results_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SummarySortOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
