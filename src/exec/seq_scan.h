// Sequential scan over a base table, attaching each row's summary objects
// (cloned from the maintained state) and attachment metadata. The entry
// point of every InsightNotes pipeline.

#ifndef INSIGHTNOTES_EXEC_SEQ_SCAN_H_
#define INSIGHTNOTES_EXEC_SEQ_SCAN_H_

#include <string>
#include <vector>

#include "annotation/annotation_store.h"
#include "core/summary_manager.h"
#include "exec/operator.h"
#include "rel/table.h"

namespace insightnotes::exec {

class SeqScanOperator final : public Operator {
 public:
  /// Scans `table` under `alias` (used to qualify output columns). When
  /// `with_summaries` is false the scan produces bare tuples — the
  /// "annotations off" baseline of the benches. `manager`/`store` must
  /// outlive the operator.
  SeqScanOperator(const rel::Table* table, std::string alias,
                  core::SummaryManager* manager, const ann::AnnotationStore* store,
                  bool with_summaries = true);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override { return "SeqScan(" + alias_ + ")"; }
  size_t EstimatedRows() const override {
    return static_cast<size_t>(table_->NumRows());
  }

  /// Reordered plans only: stamp each emitted tuple's order_ranks with its
  /// scan-emission position, the sort key the RestoreOrderOperator uses to
  /// re-establish the canonical FROM-order output.
  void EnableRankStamping() { stamp_ranks_ = true; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  const rel::Table* table_;
  std::string alias_;
  core::SummaryManager* manager_;
  const ann::AnnotationStore* store_;
  bool with_summaries_;
  bool stamp_ranks_ = false;
  rel::Schema schema_;

  // Pinned engine epoch captured from the query context at Open. Non-null
  // while the scan reads snapshot state (row visibility bound, summaries,
  // attachments); null = live reads against manager_/store_.
  std::shared_ptr<const core::EngineSnapshot> snapshot_;

  // Materialized row ids (tables are mutable between Open calls).
  std::vector<rel::RowId> rows_;
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_SEQ_SCAN_H_
