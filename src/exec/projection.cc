#include "exec/projection.h"

#include <algorithm>

namespace insightnotes::exec {

ProjectOperator::ProjectOperator(std::unique_ptr<Operator> child,
                                 std::vector<ProjectionItem> items,
                                 bool trim_annotations)
    : child_(std::move(child)),
      items_(std::move(items)),
      trim_annotations_(trim_annotations) {
  const rel::Schema& in = child_->OutputSchema();
  kept_positions_.resize(in.NumColumns());
  for (size_t item = 0; item < items_.size(); ++item) {
    std::vector<size_t> refs;
    items_[item].expr->CollectColumnRefs(&refs);
    for (size_t c : refs) {
      if (c < kept_positions_.size()) kept_positions_[c].push_back(item);
    }
    schema_.AddColumn(
        rel::Column{items_[item].output_name, items_[item].type, items_[item].qualifier});
  }
  for (size_t c = 0; c < kept_positions_.size(); ++c) {
    if (!kept_positions_[c].empty()) kept_columns_.push_back(c);
  }
}

Result<std::unique_ptr<ProjectOperator>> ProjectOperator::FromColumns(
    std::unique_ptr<Operator> child, const std::vector<std::string>& names,
    bool trim_annotations) {
  const rel::Schema& in = child->OutputSchema();
  std::vector<ProjectionItem> items;
  items.reserve(names.size());
  for (const std::string& name : names) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(size_t index, in.IndexOf(name));
    const rel::Column& column = in.ColumnAt(index);
    ProjectionItem item;
    item.expr = rel::MakeColumn(index, column.QualifiedName());
    item.output_name = column.name;
    item.qualifier = column.qualifier;
    item.type = column.type;
    items.push_back(std::move(item));
  }
  return std::make_unique<ProjectOperator>(std::move(child), std::move(items),
                                           trim_annotations);
}

Status ProjectOperator::ProjectTuple(core::AnnotatedTuple* in_ptr,
                                     core::AnnotatedTuple* out) const {
  core::AnnotatedTuple& in = *in_ptr;
  // 1. Trim: eliminate the effect of annotations attached only to
  //    projected-out columns (before any downstream merge — Theorem 1).
  std::vector<core::AttachmentInfo> surviving;
  surviving.reserve(in.attachments.size());
  for (core::AttachmentInfo& att : in.attachments) {
    bool survives =
        !trim_annotations_ || att.columns.empty() ||
        std::any_of(att.columns.begin(), att.columns.end(), [&](size_t c) {
          return c < kept_positions_.size() && !kept_positions_[c].empty();
        });
    if (!survives) {
      for (auto& summary : in.summaries) {
        if (summary->Contains(att.id)) {
          INSIGHTNOTES_RETURN_IF_ERROR(summary->RemoveAnnotation(att.id));
        }
      }
      continue;
    }
    // 2. Remap covered columns to output positions.
    core::AttachmentInfo remapped;
    remapped.id = att.id;
    for (size_t c : att.columns) {
      if (c < kept_positions_.size()) {
        remapped.columns.insert(remapped.columns.end(), kept_positions_[c].begin(),
                                kept_positions_[c].end());
      }
    }
    std::sort(remapped.columns.begin(), remapped.columns.end());
    remapped.columns.erase(
        std::unique(remapped.columns.begin(), remapped.columns.end()),
        remapped.columns.end());
    surviving.push_back(std::move(remapped));
  }

  // 3. Project the data values.
  rel::Tuple projected;
  for (const ProjectionItem& item : items_) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, item.expr->Evaluate(in.tuple));
    projected.Append(std::move(v));
  }

  out->tuple = std::move(projected);
  out->summaries = std::move(in.summaries);
  out->attachments = std::move(surviving);
  // Per-table Theorem-1 projections sit below the joins of a reordered
  // plan; carry the order keys through to the RestoreOrder above.
  out->order_ranks = std::move(in.order_ranks);
  return Status::OK();
}

Result<bool> ProjectOperator::NextImpl(core::AnnotatedTuple* out) {
  core::AnnotatedTuple in;
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  INSIGHTNOTES_RETURN_IF_ERROR(ProjectTuple(&in, out));
  Trace(*out);
  return true;
}

Result<bool> ProjectOperator::NextBatchImpl(core::AnnotatedBatch* out) {
  core::AnnotatedBatch in;
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in));
  if (!more) return false;
  out->tuples.resize(in.tuples.size());
  out->morsel = in.morsel;
  for (size_t i = 0; i < in.tuples.size(); ++i) {
    INSIGHTNOTES_RETURN_IF_ERROR(ProjectTuple(&in.tuples[i], &out->tuples[i]));
    Trace(out->tuples[i]);
  }
  return true;
}

std::string ProjectOperator::Name() const {
  std::string name = "Project(";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) name += ", ";
    name += items_[i].expr->ToString();
  }
  name += ")";
  return name;
}

}  // namespace insightnotes::exec
