// Plan-tree snapshots of the per-operator OperatorMetrics counters and
// their text rendering — the implementation behind EXPLAIN [ANALYZE].
// CollectPlanMetrics walks Operator::Children() after execution; rows_in
// of an operator is derived as the sum of its children's rows_out, so
// operators only maintain output-side counters.

#ifndef INSIGHTNOTES_EXEC_METRICS_H_
#define INSIGHTNOTES_EXEC_METRICS_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace insightnotes::exec {

/// One node of the snapshot tree produced by CollectPlanMetrics.
struct PlanMetrics {
  std::string name;
  OperatorMetrics metrics;
  uint64_t rows_in = 0;   // Sum of children's rows_out.
  uint64_t est_rows = 0;  // Planner's cardinality estimate (PlannerEstimate).
  /// True when the planner stamped est_rows; drift is only meaningful (and
  /// only rendered) then — heuristic fallbacks would flag spurious drift.
  bool has_est = false;
  std::vector<PlanMetrics> children;
};

/// Snapshots the counters of `root`'s subtree (call after execution).
PlanMetrics CollectPlanMetrics(Operator* root);

/// Renders the plan shape only — EXPLAIN.
std::string RenderPlan(Operator* root);

/// Renders the snapshot with counters — EXPLAIN ANALYZE.
std::string RenderPlanMetrics(const PlanMetrics& root);

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_METRICS_H_
