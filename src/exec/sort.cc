#include "exec/sort.h"

#include <algorithm>

#include "rel/index.h"

namespace insightnotes::exec {

Status SortOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  results_.reserve(child_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      results_.push_back(std::move(in));
    }
  }

  // Precompute key values so comparator calls cannot fail mid-sort.
  std::vector<std::vector<rel::Value>> key_values(results_.size());
  for (size_t i = 0; i < results_.size(); ++i) {
    key_values[i].reserve(keys_.size());
    for (const SortKey& key : keys_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, key.expr->Evaluate(results_[i].tuple));
      key_values[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(results_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rel::ValueLess less;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const rel::Value& va = key_values[a][k];
      const rel::Value& vb = key_values[b][k];
      if (less(va, vb)) return keys_[k].ascending;
      if (less(vb, va)) return !keys_[k].ascending;
    }
    return false;
  });
  std::vector<core::AnnotatedTuple> sorted;
  sorted.reserve(results_.size());
  for (size_t i : order) sorted.push_back(std::move(results_[i]));
  results_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

Result<bool> LimitOperator::NextImpl(core::AnnotatedTuple* out) {
  if (produced_ >= limit_) return false;
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
