#include "exec/sort.h"

#include <algorithm>
#include <queue>

#include "common/clock.h"
#include "rel/index.h"

namespace insightnotes::exec {

Status SortOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  ReleaseMemory();
  results_.reserve(child_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(core::ApproxBytes(batch)));
    for (core::AnnotatedTuple& in : batch.tuples) {
      results_.push_back(std::move(in));
    }
  }

  // Precompute key values so comparator calls cannot fail mid-sort.
  std::vector<std::vector<rel::Value>> key_values(results_.size());
  for (size_t i = 0; i < results_.size(); ++i) {
    key_values[i].reserve(keys_.size());
    for (const SortKey& key : keys_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, key.expr->Evaluate(results_[i].tuple));
      key_values[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(results_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rel::ValueLess less;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const rel::Value& va = key_values[a][k];
      const rel::Value& vb = key_values[b][k];
      if (less(va, vb)) return keys_[k].ascending;
      if (less(vb, va)) return !keys_[k].ascending;
    }
    return false;
  });
  std::vector<core::AnnotatedTuple> sorted;
  sorted.reserve(results_.size());
  for (size_t i : order) sorted.push_back(std::move(results_[i]));
  results_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

Status PartialSortState::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.clear();
  return Status::OK();
}

void PartialSortState::Publish(std::vector<SortRunEntry>&& run) {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.push_back(std::move(run));
}

std::vector<std::vector<SortRunEntry>> PartialSortState::Take() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(runs_);
}

Status TopKBound::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  bound_ = SortRunEntry{};
  version_.store(0, std::memory_order_release);
  return Status::OK();
}

bool TopKBound::Tighten(const SortRunEntry& candidate) {
  SortRunLess less(&ascending_);
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t version = version_.load(std::memory_order_relaxed);
  if (version != 0 && !less(candidate, bound_)) return false;
  bound_.keys = candidate.keys;
  bound_.morsel = candidate.morsel;
  bound_.pos = candidate.pos;
  version_.store(version + 1, std::memory_order_release);
  return true;
}

bool TopKBound::Refresh(uint64_t* version, SortRunEntry* out) const {
  if (version_.load(std::memory_order_acquire) == *version) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  *version = version_.load(std::memory_order_relaxed);
  out->keys = bound_.keys;
  out->morsel = bound_.morsel;
  out->pos = bound_.pos;
  return true;
}

PartialSortOperator::PartialSortOperator(std::unique_ptr<Operator> child,
                                         std::vector<ParallelSortKey> keys,
                                         std::shared_ptr<PartialSortState> sink,
                                         std::shared_ptr<TopKBound> bound)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      sink_(std::move(sink)),
      bound_(std::move(bound)) {
  ascending_.reserve(keys_.size());
  for (const ParallelSortKey& key : keys_) ascending_.push_back(key.ascending);
}

std::string PartialSortOperator::Name() const {
  if (bound_ != nullptr) {
    return "PartialTopK(" + std::to_string(bound_->limit()) + ")";
  }
  return "PartialSort";
}

Result<bool> PartialSortOperator::NextImpl(core::AnnotatedTuple*) {
  core::AnnotatedBatch batch;
  return NextBatchImpl(&batch);
}

Status PartialSortOperator::BuildEntry(const core::AnnotatedBatch& batch,
                                       size_t i, SortRunEntry* entry) {
  const core::AnnotatedTuple& in = batch.tuples[i];
  entry->keys.clear();
  entry->keys.reserve(keys_.size());
  for (const ParallelSortKey& key : keys_) {
    if (key.spec != nullptr) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t count, key.spec->Evaluate(in));
      entry->keys.emplace_back(count);
    } else {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, key.expr->Evaluate(in.tuple));
      entry->keys.push_back(std::move(v));
    }
  }
  entry->morsel = batch.morsel;
  entry->pos = static_cast<uint32_t>(i);
  return Status::OK();
}

Status PartialSortOperator::DrainUnbounded(std::vector<SortRunEntry>* run) {
  // Drain the pipeline into one local run, tagging each tuple with its
  // serial rank (morsel, position within the morsel batch).
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(
        core::ApproxBytes(batch) + batch.tuples.size() * sizeof(SortRunEntry)));
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      SortRunEntry entry;
      INSIGHTNOTES_RETURN_IF_ERROR(BuildEntry(batch, i, &entry));
      entry.tuple = std::move(batch.tuples[i]);
      run->push_back(std::move(entry));
    }
  }
  return Status::OK();
}

Status PartialSortOperator::DrainTopK(std::vector<SortRunEntry>* run) {
  const size_t k = bound_->limit();
  SortRunLess less(&ascending_);
  // `run` doubles as the max-heap (per `less`, the front sorts last among
  // the kept entries — the local k-th candidate). Every input row either
  // survives in the heap or counts as pruned, so per worker
  //   rows_in == rows_pruned + partial_groups.
  SortRunEntry shared;     // Cached copy of the global bound (keys + rank).
  uint64_t version = 0;    // Last-seen bound version; 0 = none yet.
  bool have_shared = false;
  SortRunEntry entry;
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      if (k == 0) {  // LIMIT 0: nothing can qualify.
        ++metrics_.rows_pruned;
        continue;
      }
      INSIGHTNOTES_RETURN_IF_ERROR(BuildEntry(batch, i, &entry));
      if (bound_->Refresh(&version, &shared)) have_shared = true;
      // Some worker holds k entries sorting at or before `shared`; a row
      // sorting strictly after it cannot be in the global top k.
      if (have_shared && less(shared, entry)) {
        ++metrics_.rows_pruned;
        continue;
      }
      if (run->size() == k) {
        if (less(run->front(), entry)) {  // Sorts after our own k-th.
          ++metrics_.rows_pruned;
          continue;
        }
        // Evict the local k-th candidate — it is now provably outside.
        std::pop_heap(run->begin(), run->end(), less);
        run->back().keys = std::move(entry.keys);
        run->back().morsel = entry.morsel;
        run->back().pos = entry.pos;
        run->back().tuple = std::move(batch.tuples[i]);
        std::push_heap(run->begin(), run->end(), less);
        ++metrics_.rows_pruned;
      } else {
        entry.tuple = std::move(batch.tuples[i]);
        run->push_back(std::move(entry));
        std::push_heap(run->begin(), run->end(), less);
      }
      // A full heap's root is a valid k-th-candidate witness: publish it
      // so the other workers can prune against it too.
      if (run->size() == k && bound_->Tighten(run->front())) {
        ++metrics_.bound_updates;
      }
    }
  }
  std::sort_heap(run->begin(), run->end(), less);
  return Status::OK();
}

Result<bool> PartialSortOperator::NextBatchImpl(core::AnnotatedBatch*) {
  std::vector<SortRunEntry> run;
  if (bound_ != nullptr) {
    INSIGHTNOTES_RETURN_IF_ERROR(DrainTopK(&run));
  } else {
    INSIGHTNOTES_RETURN_IF_ERROR(DrainUnbounded(&run));
    // The rank makes SortRunLess a total order, so a plain sort suffices.
    std::sort(run.begin(), run.end(), SortRunLess(&ascending_));
  }
  metrics_.partial_groups += run.size();
  if (!run.empty()) sink_->Publish(std::move(run));
  return false;  // Runs surface via the sink, not as batches.
}

SortMergeOperator::SortMergeOperator(std::unique_ptr<Operator> child,
                                     std::vector<bool> ascending, std::string label,
                                     std::shared_ptr<PartialSortState> source,
                                     size_t limit)
    : child_(std::move(child)),
      ascending_(std::move(ascending)),
      label_(std::move(label)),
      source_(std::move(source)),
      limit_(limit) {}

Status SortMergeOperator::OpenImpl() {
  results_.clear();
  cursor_ = 0;
  ReleaseMemory();
  // Opening the child runs the parallel section to exhaustion; the pool
  // futures it joins on provide the happens-before for the published runs.
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  std::vector<std::vector<SortRunEntry>> runs = source_->Take();
  Stopwatch watch;
  SortRunLess less(&ascending_);
  std::vector<size_t> pos(runs.size(), 0);
  // Min-heap over run indexes, keyed by each run's current head entry.
  // pos[i] only advances while i is out of the heap, so the comparator
  // stays consistent for every element currently enqueued.
  auto head_greater = [&](size_t a, size_t b) {
    return less(runs[b][pos[b]], runs[a][pos[a]]);
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(head_greater)> heap(
      head_greater);
  size_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total += runs[i].size();
    if (!runs[i].empty()) heap.push(i);
  }
  results_.reserve(std::min(total, limit_));
  // With a pushed-down LIMIT the merge stops at `limit_` rows: the heads
  // beyond it are exactly the rows the serial Limit above would discard.
  while (!heap.empty() && results_.size() < limit_) {
    size_t i = heap.top();
    heap.pop();
    results_.push_back(std::move(runs[i][pos[i]].tuple));
    if (++pos[i] < runs[i].size()) heap.push(i);
  }
  for (const core::AnnotatedTuple& tuple : results_) {
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(core::ApproxBytes(tuple)));
  }
  if (metrics_enabled_) {
    metrics_.merge_ns += static_cast<uint64_t>(watch.ElapsedNanos());
  }
  return Status::OK();
}

Result<bool> SortMergeOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

Result<bool> LimitOperator::NextImpl(core::AnnotatedTuple* out) {
  if (produced_ >= limit_) return false;
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
