#include "exec/sort.h"

#include <algorithm>
#include <queue>

#include "common/clock.h"
#include "rel/index.h"

namespace insightnotes::exec {

Status SortOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  results_.reserve(child_->EstimatedRows());
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      results_.push_back(std::move(in));
    }
  }

  // Precompute key values so comparator calls cannot fail mid-sort.
  std::vector<std::vector<rel::Value>> key_values(results_.size());
  for (size_t i = 0; i < results_.size(); ++i) {
    key_values[i].reserve(keys_.size());
    for (const SortKey& key : keys_) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, key.expr->Evaluate(results_[i].tuple));
      key_values[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(results_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rel::ValueLess less;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const rel::Value& va = key_values[a][k];
      const rel::Value& vb = key_values[b][k];
      if (less(va, vb)) return keys_[k].ascending;
      if (less(vb, va)) return !keys_[k].ascending;
    }
    return false;
  });
  std::vector<core::AnnotatedTuple> sorted;
  sorted.reserve(results_.size());
  for (size_t i : order) sorted.push_back(std::move(results_[i]));
  results_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

Status PartialSortState::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.clear();
  return Status::OK();
}

void PartialSortState::Publish(std::vector<SortRunEntry>&& run) {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.push_back(std::move(run));
}

std::vector<std::vector<SortRunEntry>> PartialSortState::Take() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(runs_);
}

PartialSortOperator::PartialSortOperator(std::unique_ptr<Operator> child,
                                         std::vector<ParallelSortKey> keys,
                                         std::shared_ptr<PartialSortState> sink)
    : child_(std::move(child)), keys_(std::move(keys)), sink_(std::move(sink)) {
  ascending_.reserve(keys_.size());
  for (const ParallelSortKey& key : keys_) ascending_.push_back(key.ascending);
}

std::string PartialSortOperator::Name() const { return "PartialSort"; }

Result<bool> PartialSortOperator::NextImpl(core::AnnotatedTuple*) {
  core::AnnotatedBatch batch;
  return NextBatchImpl(&batch);
}

Result<bool> PartialSortOperator::NextBatchImpl(core::AnnotatedBatch*) {
  // Drain the pipeline into one local run, tagging each tuple with its
  // serial rank (morsel, position within the morsel batch).
  core::AnnotatedBatch batch;
  std::vector<SortRunEntry> run;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      core::AnnotatedTuple& in = batch.tuples[i];
      SortRunEntry entry;
      entry.keys.reserve(keys_.size());
      for (const ParallelSortKey& key : keys_) {
        if (key.spec != nullptr) {
          INSIGHTNOTES_ASSIGN_OR_RETURN(int64_t count, key.spec->Evaluate(in));
          entry.keys.emplace_back(count);
        } else {
          INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value v, key.expr->Evaluate(in.tuple));
          entry.keys.push_back(std::move(v));
        }
      }
      entry.morsel = batch.morsel;
      entry.pos = static_cast<uint32_t>(i);
      entry.tuple = std::move(in);
      run.push_back(std::move(entry));
    }
  }
  // The rank makes SortRunLess a total order, so a plain sort suffices.
  std::sort(run.begin(), run.end(), SortRunLess(&ascending_));
  metrics_.partial_groups += run.size();
  if (!run.empty()) sink_->Publish(std::move(run));
  return false;  // Runs surface via the sink, not as batches.
}

SortMergeOperator::SortMergeOperator(std::unique_ptr<Operator> child,
                                     std::vector<bool> ascending, std::string label,
                                     std::shared_ptr<PartialSortState> source)
    : child_(std::move(child)),
      ascending_(std::move(ascending)),
      label_(std::move(label)),
      source_(std::move(source)) {}

Status SortMergeOperator::OpenImpl() {
  results_.clear();
  cursor_ = 0;
  // Opening the child runs the parallel section to exhaustion; the pool
  // futures it joins on provide the happens-before for the published runs.
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  std::vector<std::vector<SortRunEntry>> runs = source_->Take();
  Stopwatch watch;
  SortRunLess less(&ascending_);
  std::vector<size_t> pos(runs.size(), 0);
  // Min-heap over run indexes, keyed by each run's current head entry.
  // pos[i] only advances while i is out of the heap, so the comparator
  // stays consistent for every element currently enqueued.
  auto head_greater = [&](size_t a, size_t b) {
    return less(runs[b][pos[b]], runs[a][pos[a]]);
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(head_greater)> heap(
      head_greater);
  size_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total += runs[i].size();
    if (!runs[i].empty()) heap.push(i);
  }
  results_.reserve(total);
  while (!heap.empty()) {
    size_t i = heap.top();
    heap.pop();
    results_.push_back(std::move(runs[i][pos[i]].tuple));
    if (++pos[i] < runs[i].size()) heap.push(i);
  }
  if (metrics_enabled_) {
    metrics_.merge_ns += static_cast<uint64_t>(watch.ElapsedNanos());
  }
  return Status::OK();
}

Result<bool> SortMergeOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

Result<bool> LimitOperator::NextImpl(core::AnnotatedTuple* out) {
  if (produced_ >= limit_) return false;
  INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
