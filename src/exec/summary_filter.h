// Summary-based predicates (Section 2.1: "summary-based processing can be
// plugged in at any stage of the query plan, e.g., filtering, joining, or
// sorting the data tuples according to summary-based predicates").
//
// A SummaryCountSpec denotes SUMMARY_COUNT(instance[, 'label']) — the
// number of annotations a tuple's summary object of `instance` holds,
// optionally restricted to one component (a classifier label, a cluster
// group's label, a snippet title). SummaryFilterOperator and
// SummarySortOperator evaluate it against the summary objects riding on
// each AnnotatedTuple — no raw-annotation access.

#ifndef INSIGHTNOTES_EXEC_SUMMARY_FILTER_H_
#define INSIGHTNOTES_EXEC_SUMMARY_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

struct SummaryCountSpec {
  std::string instance;  // Summary instance name.
  std::string label;     // Component label; empty = all annotations.

  /// Evaluates the count against `tuple`'s summaries. A tuple without a
  /// summary object of `instance` counts 0 (e.g. after a join where only
  /// one side carries the instance); an unknown label counts 0.
  Result<int64_t> Evaluate(const core::AnnotatedTuple& tuple) const;

  std::string ToString() const;
};

/// Filters on SUMMARY_COUNT(spec) <op> threshold.
class SummaryFilterOperator final : public Operator {
 public:
  SummaryFilterOperator(std::unique_ptr<Operator> child, SummaryCountSpec spec,
                        rel::CompareOp op, int64_t threshold)
      : child_(std::move(child)), spec_(std::move(spec)), op_(op),
        threshold_(threshold) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  /// Native batch path: one child batch in, one (same-morsel) batch out;
  /// may be empty with a `true` return.
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  Result<bool> Passes(const core::AnnotatedTuple& tuple) const;

  std::unique_ptr<Operator> child_;
  SummaryCountSpec spec_;
  rel::CompareOp op_;
  int64_t threshold_;
};

/// Stable sort by SUMMARY_COUNT(spec).
class SummarySortOperator final : public Operator {
 public:
  SummarySortOperator(std::unique_ptr<Operator> child, SummaryCountSpec spec,
                      bool ascending)
      : child_(std::move(child)), spec_(std::move(spec)), ascending_(ascending) {}

  const rel::Schema& OutputSchema() const override { return child_->OutputSchema(); }
  std::string Name() const override {
    return "SummarySort(" + spec_.ToString() + (ascending_ ? " ASC" : " DESC") + ")";
  }
  std::vector<Operator*> Children() override { return {child_.get()}; }
  size_t EstimatedRows() const override { return child_->EstimatedRows(); }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> child_;
  SummaryCountSpec spec_;
  bool ascending_;
  std::vector<core::AnnotatedTuple> results_;
  size_t cursor_ = 0;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_SUMMARY_FILTER_H_
