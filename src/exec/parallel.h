// Morsel-driven parallel execution (after HyPer, Leis et al.; see
// PAPERS.md): the planner replicates the per-tuple pipeline section of a
// plan (scan -> filters -> Theorem-1 projections -> hash-join probes ->
// summary filters) into P worker pipelines that share
//
//   * a ScanMorselSource — the driving table materialized once, handing
//     out fixed-size tuple-range morsels through an atomic cursor, and
//   * any HashJoinBuildState (see exec/hash_join.h) — built once, probed
//     concurrently.
//
// GatherOperator owns the worker pipelines and the shared states, runs the
// workers on the engine's thread pool, and re-serializes their output in
// morsel order. Because every pipeline stage is a pure per-tuple function
// over immutable shared state, each morsel's output batch is independent
// of which worker ran it — so the gathered stream (tuples, merged summary
// objects, re-elected cluster representatives, attachment metadata) is
// byte-identical to serial execution, preserving the Theorems 1 & 2
// plan-equivalence guarantees.

#ifndef INSIGHTNOTES_EXEC_PARALLEL_H_
#define INSIGHTNOTES_EXEC_PARALLEL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/thread_pool.h"
#include "core/summary_manager.h"
#include "exec/index_scan.h"
#include "exec/operator.h"
#include "rel/table.h"

namespace insightnotes::exec {

/// State shared by all worker pipelines of one parallel plan. Gather
/// resets each registered state exactly once per Open, in registration
/// order, before any worker job is submitted.
class SharedPlanState {
 public:
  virtual ~SharedPlanState() = default;
  virtual Status Reset() = 0;

  /// Wires the statement lifecycle context into states that materialize
  /// memory (morsel prefetch, join builds) so Reset can charge the budget
  /// and poll for cancellation. `context` may be nullptr (detach); states
  /// keep the shared_ptr so a retained plan's context stays alive.
  virtual void AttachQueryContext(std::shared_ptr<QueryContext> /*context*/) {}
};

/// Cooperative row quota of a plain `LIMIT k` parallel plan (no ORDER BY).
/// Serial semantics take the first k surviving rows in morsel order, so
/// dispatch can stop early: workers report each completed morsel's
/// surviving row count, the quota advances a contiguous-prefix pointer
/// over completed morsels, and it is satisfied once the prefix carries at
/// least k rows. Because morsels are claimed off a contiguous atomic
/// cursor, every morsel before the prefix pointer has been dispatched —
/// the gathered stream therefore always contains the serial first k rows,
/// and whatever the still-running workers publish past them is trimmed by
/// the Limit above. Stopping dispatch can only *shrink* the tail, never
/// change the first k rows, so results stay byte-identical to serial.
class RowQuota final : public SharedPlanState {
 public:
  explicit RowQuota(size_t limit) : limit_(limit) {}

  Status Reset() override;
  size_t limit() const { return limit_; }

  /// Records that morsel `morsel` completed with `rows` surviving rows.
  /// Called from worker threads as batches reach the gather.
  void OnMorselDone(uint64_t morsel, size_t rows);

  /// True once the contiguous completed prefix carries >= limit rows
  /// (immediately for LIMIT 0). One relaxed atomic load on the fast path.
  bool Satisfied() const { return satisfied_.load(std::memory_order_acquire); }

 private:
  const size_t limit_;
  std::atomic<bool> satisfied_{false};
  std::mutex mutex_;
  std::unordered_map<uint64_t, size_t> pending_;  // Done, not yet in prefix.
  uint64_t prefix_morsel_ = 0;  // First morsel not folded into the prefix.
  size_t prefix_rows_ = 0;      // Surviving rows in morsels [0, prefix_morsel_).
};

/// The driving table of a parallel pipeline section. Reset materializes
/// the live rows *and their data tuples* in one serial scan pass (the
/// buffer pool below rel::Table is single-threaded); workers then only do
/// CPU work — summary clones, attachment metadata, downstream stages.
class ScanMorselSource final : public SharedPlanState {
 public:
  ScanMorselSource(const rel::Table* table, std::string alias,
                   core::SummaryManager* manager, const ann::AnnotationStore* store,
                   bool with_summaries, size_t morsel_size);

  Status Reset() override;
  void AttachQueryContext(std::shared_ptr<QueryContext> context) override;

  /// Claims the next unprocessed morsel index. Thread-safe; false when the
  /// table is exhausted, an attached RowQuota is satisfied, or dispatch
  /// was aborted (worker failure / cancellation).
  bool ClaimMorsel(uint64_t* morsel);

  /// Stops handing out morsels: peer workers of a failed/cancelled worker
  /// drain via exhaustion at their next claim instead of scanning on.
  /// Thread-safe; cleared by Reset. The gather still reports the recorded
  /// error, so an aborted dispatch can never pass off a truncated result
  /// as success.
  void AbortDispatch() { abort_.store(true, std::memory_order_release); }
  bool dispatch_aborted() const {
    return abort_.load(std::memory_order_acquire);
  }

  /// Attaches a LIMIT row quota: once satisfied, ClaimMorsel stops
  /// dispatching. Set by the planner before execution.
  void SetQuota(std::shared_ptr<RowQuota> quota) { quota_ = std::move(quota); }

  /// Restricts the materialized rows to an index probe's matches (see
  /// exec/index_scan.h): Reset probes the table's index instead of
  /// scanning, yielding rows in ascending RowId order — a subsequence of
  /// the full-scan order, so morsel-order gathering semantics carry over
  /// unchanged. Set by the planner before execution.
  void SetIndexProbe(IndexProbeSpec probe) {
    probe_ = std::move(probe);
    has_probe_ = true;
  }
  bool has_probe() const { return has_probe_; }
  const IndexProbeSpec& probe() const { return probe_; }

  /// See SeqScanOperator::EnableRankStamping: Materialize stamps each
  /// tuple's order_ranks with its global scan position. Positions are
  /// stable across morsels (index into the materialized row vector), so
  /// parallel and serial plans stamp identical ranks.
  void EnableRankStamping() { stamp_ranks_ = true; }

  /// Rows of morsels never dispatched (quota stopped the scan early).
  /// Meaningful once the parallel section has drained.
  size_t UndispatchedRows() const;

  /// Materializes morsel `morsel`'s AnnotatedTuples into `out` (summary
  /// clones + attachment metadata, exactly as SeqScanOperator would emit
  /// them). Safe to call concurrently for distinct morsels.
  Status Materialize(uint64_t morsel, core::AnnotatedBatch* out) const;

  const rel::Schema& schema() const { return schema_; }
  const std::string& alias() const { return alias_; }
  size_t EstimatedRows() const { return static_cast<size_t>(table_->NumRows()); }

 private:
  const rel::Table* table_;
  std::string alias_;
  core::SummaryManager* manager_;
  const ann::AnnotationStore* store_;
  bool with_summaries_;
  size_t morsel_size_;
  rel::Schema schema_;

  IndexProbeSpec probe_;            // Valid when has_probe_.
  bool has_probe_ = false;
  bool stamp_ranks_ = false;

  // Pinned engine epoch captured from the context at Reset; null = live
  // reads. See SeqScanOperator::snapshot_. Reset runs serially before the
  // workers start, so the capture is ordered before all Materialize calls.
  std::shared_ptr<const core::EngineSnapshot> snapshot_;

  std::vector<rel::RowId> rows_;    // Live row ids, insertion order.
  std::vector<rel::Tuple> tuples_;  // Prefetched data tuples, same order.
  std::atomic<uint64_t> next_morsel_{0};
  std::atomic<bool> abort_{false};
  std::shared_ptr<RowQuota> quota_;  // Null unless a LIMIT was pushed down.
  std::shared_ptr<QueryContext> context_;  // Nullable.
  MemoryReservation reservation_;          // Charges the prefetched tuples.
};

/// Per-worker scan stage over a shared ScanMorselSource. Open is a no-op
/// (the source is reset by the owning GatherOperator).
class MorselScanOperator final : public Operator {
 public:
  explicit MorselScanOperator(std::shared_ptr<ScanMorselSource> source)
      : source_(std::move(source)) {}

  const rel::Schema& OutputSchema() const override { return source_->schema(); }
  std::string Name() const override {
    if (source_->has_probe()) {
      return "MorselIndexScan(" + source_->alias() + "." +
             source_->probe().ToString() + ")";
    }
    return "MorselScan(" + source_->alias() + ")";
  }
  size_t EstimatedRows() const override { return source_->EstimatedRows(); }

  /// No morsel claimed yet (error before the first claim sorts first).
  static constexpr uint64_t kNoMorselClaimed = ~uint64_t{0};

  /// The morsel most recently claimed by this worker's scan —
  /// kNoMorselClaimed before the first claim. Written by the worker
  /// thread; the gather reads it after joining the worker to order
  /// failures by morsel (first-error-in-morsel-order).
  uint64_t last_claimed_morsel() const { return last_claimed_morsel_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;

 private:
  std::shared_ptr<ScanMorselSource> source_;
  uint64_t last_claimed_morsel_ = kNoMorselClaimed;
  // Tuple-at-a-time adapter state (NextBatch is the native interface).
  core::AnnotatedBatch pending_;
  size_t pending_pos_ = 0;
};

/// Exchange: runs P worker pipelines over the shared morsel source on the
/// engine's thread pool and re-serializes their batches in morsel order,
/// making the output order (and content) identical to serial execution.
/// With a null pool or a single worker the pipeline runs inline.
class GatherOperator final : public Operator {
 public:
  GatherOperator(std::vector<std::unique_ptr<Operator>> workers,
                 std::vector<std::shared_ptr<SharedPlanState>> states,
                 ThreadPool* pool);

  const rel::Schema& OutputSchema() const override {
    return workers_.front()->OutputSchema();
  }
  std::string Name() const override {
    return "Gather(" + std::to_string(workers_.size()) + ")";
  }
  std::vector<Operator*> Children() override;
  size_t EstimatedRows() const override {
    return workers_.front()->EstimatedRows();
  }
  /// Serializes the sink: worker pipelines emit from pool threads.
  void SetTraceSink(TraceSink sink) override;
  /// Forwards the context to worker pipelines and shared states, and
  /// attaches one gather-buffer reservation per worker.
  void SetQueryContext(std::shared_ptr<QueryContext> context) override;

  /// Wires the LIMIT row-quota protocol: drained batches report their
  /// surviving rows to `quota`, and rows `source` never dispatched count
  /// as this operator's rows_pruned.
  void EnableRowQuota(std::shared_ptr<RowQuota> quota,
                      std::shared_ptr<ScanMorselSource> source) {
    quota_ = std::move(quota);
    quota_source_ = std::move(source);
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;
  Result<bool> NextBatchImpl(core::AnnotatedBatch* out) override;
  /// Joins any outstanding worker jobs before shared states or the worker
  /// pipelines can be torn down — the cancellation-path half of teardown.
  Status CloseImpl() override;

 private:
  /// Runs worker `w`'s pipeline to exhaustion, charging its gathered
  /// batches to the budget. On failure, aborts morsel dispatch so peers
  /// drain at their next claim.
  Status DrainWorker(size_t w);
  /// DrainWorker with exception containment: a throwing pipeline stage
  /// surfaces as Status::Internal on the gather path, never std::terminate.
  Status RunWorkerContained(size_t w);
  /// Joins all outstanding futures, recording each worker's Status.
  void JoinWorkers();
  /// The error to surface: user cancellation/deadline first (uniform
  /// across workers), otherwise the failure with the smallest
  /// (last-claimed-morsel, worker) — deterministic regardless of which
  /// worker's job happened to fail first on the clock.
  Status FirstWorkerError() const;

  std::vector<std::unique_ptr<Operator>> workers_;
  std::vector<std::shared_ptr<SharedPlanState>> states_;
  ThreadPool* pool_;
  std::shared_ptr<RowQuota> quota_;             // Null without LIMIT pushdown.
  std::shared_ptr<ScanMorselSource> quota_source_;
  std::shared_ptr<ScanMorselSource> source_;    // Dispatch-abort target.
  std::vector<MorselScanOperator*> leaves_;     // Per-worker scan leaf (nullable).

  // Per-worker execution state. collected_[w], worker_reservations_[w] and
  // leaves_[w] are touched only by worker w's job between submit and join;
  // worker_status_ is written at join time.
  std::vector<std::future<Status>> futures_;
  std::vector<std::vector<core::AnnotatedBatch>> collected_;
  std::vector<Status> worker_status_;
  std::vector<std::unique_ptr<MemoryReservation>> worker_reservations_;

  std::vector<core::AnnotatedBatch> batches_;  // Morsel order after Open.
  size_t batch_cursor_ = 0;
  size_t tuple_cursor_ = 0;  // Within batches_[batch_cursor_] for NextImpl.
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_PARALLEL_H_
