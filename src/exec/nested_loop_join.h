// Nested-loop join for arbitrary (non-equi) join predicates, with the same
// summary-merge semantics as the hash join.

#ifndef INSIGHTNOTES_EXEC_NESTED_LOOP_JOIN_H_
#define INSIGHTNOTES_EXEC_NESTED_LOOP_JOIN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::exec {

class NestedLoopJoinOperator final : public Operator {
 public:
  /// `predicate` is evaluated against the concatenated (left, right) tuple.
  NestedLoopJoinOperator(std::unique_ptr<Operator> left,
                         std::unique_ptr<Operator> right, rel::ExprPtr predicate);

  const rel::Schema& OutputSchema() const override { return schema_; }
  std::string Name() const override { return "NestedLoopJoin" + predicate_->ToString(); }
  std::vector<Operator*> Children() override { return {left_.get(), right_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(core::AnnotatedTuple* out) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  rel::ExprPtr predicate_;
  rel::Schema schema_;

  std::vector<core::AnnotatedTuple> right_tuples_;  // Materialized inner.
  core::AnnotatedTuple current_left_;
  size_t right_index_ = 0;
  bool left_valid_ = false;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_NESTED_LOOP_JOIN_H_
