#include "exec/distinct.h"

#include <algorithm>
#include <unordered_map>

#include "common/clock.h"

namespace insightnotes::exec {

namespace {

struct TupleHash {
  size_t operator()(const rel::Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};
using TupleIndex = std::unordered_map<rel::Tuple, size_t, TupleHash>;

}  // namespace

Status DistinctOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  ReleaseMemory();
  TupleIndex index;
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      auto [it, inserted] = index.emplace(in.tuple, results_.size());
      if (inserted) {
        INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(core::ApproxBytes(in)));
        results_.push_back(std::move(in));
      } else {
        INSIGHTNOTES_RETURN_IF_ERROR(core::MergeForGrouping(&results_[it->second], in));
      }
    }
  }
  return Status::OK();
}

Result<bool> DistinctOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

Status PartialDistinctState::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  partials_.clear();
  return Status::OK();
}

void PartialDistinctState::Publish(MorselPartial&& partial) {
  std::lock_guard<std::mutex> lock(mutex_);
  partials_.push_back(std::move(partial));
}

std::vector<PartialDistinctState::MorselPartial> PartialDistinctState::Take() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::move(partials_);
}

Result<bool> PartialDistinctOperator::NextImpl(core::AnnotatedTuple*) {
  core::AnnotatedBatch batch;
  return NextBatchImpl(&batch);
}

Result<bool> PartialDistinctOperator::NextBatchImpl(core::AnnotatedBatch*) {
  // Drain the pipeline: each child batch is one morsel, collapsed into its
  // own local distinct set.
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    if (batch.tuples.empty()) continue;  // Fully filtered morsel.
    PartialDistinctState::MorselPartial partial;
    partial.morsel = batch.morsel;
    TupleIndex index;
    index.reserve(batch.tuples.size());
    for (core::AnnotatedTuple& in : batch.tuples) {
      auto [it, inserted] = index.emplace(in.tuple, partial.entries.size());
      if (inserted) {
        PartialDistinctState::Entry entry;
        entry.tuple = std::move(in.tuple);
        entry.summary.Seed(&in, /*whole_row=*/false, /*reserve_hint=*/0);
        partial.entries.push_back(std::move(entry));
      } else {
        INSIGHTNOTES_RETURN_IF_ERROR(partial.entries[it->second].summary.Fold(in));
      }
    }
    metrics_.partial_groups += partial.entries.size();
    size_t partial_bytes = 0;
    for (const PartialDistinctState::Entry& entry : partial.entries) {
      partial_bytes += core::ApproxBytes(entry.tuple) + 256;
    }
    INSIGHTNOTES_RETURN_IF_ERROR(ChargeMemory(partial_bytes));
    sink_->Publish(std::move(partial));
  }
  return false;  // Distinct sets surface via the sink, not as batches.
}

Status DistinctMergeOperator::OpenImpl() {
  results_.clear();
  cursor_ = 0;
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  std::vector<PartialDistinctState::MorselPartial> partials = source_->Take();
  Stopwatch watch;
  std::sort(partials.begin(), partials.end(),
            [](const PartialDistinctState::MorselPartial& a,
               const PartialDistinctState::MorselPartial& b) {
              return a.morsel < b.morsel;
            });
  TupleIndex index;
  for (PartialDistinctState::MorselPartial& partial : partials) {
    for (PartialDistinctState::Entry& entry : partial.entries) {
      auto [it, inserted] = index.emplace(entry.tuple, results_.size());
      if (inserted) {
        results_.push_back(std::move(entry));
      } else {
        INSIGHTNOTES_RETURN_IF_ERROR(
            results_[it->second].summary.Combine(std::move(entry.summary)));
      }
    }
  }
  if (metrics_enabled_) {
    metrics_.merge_ns += static_cast<uint64_t>(watch.ElapsedNanos());
  }
  return Status::OK();
}

Result<bool> DistinctMergeOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  PartialDistinctState::Entry& entry = results_[cursor_++];
  out->tuple = std::move(entry.tuple);
  entry.summary.Release(out);
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
