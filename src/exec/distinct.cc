#include "exec/distinct.h"

#include <unordered_map>

namespace insightnotes::exec {

Status DistinctOperator::OpenImpl() {
  INSIGHTNOTES_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  cursor_ = 0;
  std::unordered_map<rel::Tuple, size_t,
                     decltype([](const rel::Tuple& t) { return static_cast<size_t>(t.Hash()); })>
      index;
  core::AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (core::AnnotatedTuple& in : batch.tuples) {
      auto [it, inserted] = index.emplace(in.tuple, results_.size());
      if (inserted) {
        results_.push_back(std::move(in));
      } else {
        INSIGHTNOTES_RETURN_IF_ERROR(core::MergeForGrouping(&results_[it->second], in));
      }
    }
  }
  return Status::OK();
}

Result<bool> DistinctOperator::NextImpl(core::AnnotatedTuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = std::move(results_[cursor_++]);
  Trace(*out);
  return true;
}

}  // namespace insightnotes::exec
