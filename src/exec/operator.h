// Volcano-style iterator interface over AnnotatedTuples. Every operator
// implements the extended summary-propagation semantics of its relational
// counterpart (Section 2.1). Operators optionally report each emitted tuple
// to a trace sink — the demo's "under-the-hood execution" feature
// (Section 3, demonstration feature 3).

#ifndef INSIGHTNOTES_EXEC_OPERATOR_H_
#define INSIGHTNOTES_EXEC_OPERATOR_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "core/annotated_tuple.h"
#include "rel/schema.h"

namespace insightnotes::exec {

/// Callback invoked per emitted tuple: (operator name, tuple).
using TraceSink = std::function<void(const std::string&, const core::AnnotatedTuple&)>;

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children) for iteration. Must be called
  /// before Next; calling it again restarts the iteration.
  virtual Status Open() = 0;

  /// Produces the next tuple into `out`. Returns false when exhausted.
  virtual Result<bool> Next(core::AnnotatedTuple* out) = 0;

  virtual const rel::Schema& OutputSchema() const = 0;
  virtual std::string Name() const = 0;

  /// Installs `sink` on this operator and its children.
  virtual void SetTraceSink(TraceSink sink) { trace_ = std::move(sink); }

 protected:
  void Trace(const core::AnnotatedTuple& tuple) const {
    if (trace_) trace_(Name(), tuple);
  }

  TraceSink trace_;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_OPERATOR_H_
