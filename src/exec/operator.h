// Iterator interface over AnnotatedTuples, offered at two granularities:
// the classic Volcano tuple-at-a-time Next() and a batch-at-a-time
// NextBatch() used by the morsel-driven parallel executor (a default
// adapter turns any tuple-at-a-time operator into a batch producer). Every
// operator implements the extended summary-propagation semantics of its
// relational counterpart (Section 2.1).
//
// The public Open/Next/NextBatch entry points are non-virtual wrappers
// (operators override OpenImpl/NextImpl/NextBatchImpl): the wrapper layer
// maintains the per-operator OperatorMetrics counters surfaced through
// EXPLAIN ANALYZE and, when metrics are enabled, per-call wall-clock time.
// Operators optionally report each emitted tuple to a trace sink — the
// demo's "under-the-hood execution" feature (Section 3, demonstration
// feature 3).

#ifndef INSIGHTNOTES_EXEC_OPERATOR_H_
#define INSIGHTNOTES_EXEC_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/annotated_tuple.h"
#include "exec/query_context.h"
#include "rel/schema.h"

namespace insightnotes::exec {

/// Callback invoked per emitted tuple: (operator name, tuple).
using TraceSink = std::function<void(const std::string&, const core::AnnotatedTuple&)>;

/// Tuples the default NextBatch adapter packs into one batch.
inline constexpr size_t kDefaultBatchSize = 256;

/// Execution counters maintained by the Open/Next/NextBatch wrappers and
/// the operators themselves. Counters are always on (plain increments);
/// wall-clock time is only accumulated while metrics are enabled (see
/// Operator::SetMetricsEnabled) to keep the hot path timer-free.
struct OperatorMetrics {
  uint64_t rows_out = 0;          // Tuples emitted through Next/NextBatch.
  uint64_t batches_out = 0;       // Batches emitted through NextBatch.
  uint64_t wall_ns = 0;           // Inclusive time in Open/Next/NextBatch.
  uint64_t morsels = 0;           // Morsel scans: morsels processed.
  uint64_t build_partitions = 0;  // Hash joins: partitions in the build.
  uint64_t partial_groups = 0;    // Partial agg/distinct/sort: local states built.
  uint64_t merge_ns = 0;          // Merge operators: time folding partial states.
  uint64_t rows_pruned = 0;       // LIMIT pushdown: rows provably outside the
                                  // result, dropped before materialization.
  uint64_t bound_updates = 0;     // Top-k sort: shared k-th-candidate tightenings.
  uint64_t cancel_checks = 0;     // Cooperative interrupt polls at this operator.
  uint64_t mem_peak = 0;          // High-water bytes of materialized state.
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children) for iteration. Must be called
  /// before Next/NextBatch; calling it again restarts the iteration.
  Status Open();

  /// Produces the next tuple into `out`. Returns false when exhausted.
  Result<bool> Next(core::AnnotatedTuple* out);

  /// Produces the next batch into `out` (cleared first). Returns false when
  /// exhausted. A returned batch may be *empty* (e.g. a fully filtered
  /// morsel): emptiness does not signal exhaustion, only `false` does.
  Result<bool> NextBatch(core::AnnotatedBatch* out);

  /// Releases execution-scoped resources: joins outstanding worker jobs
  /// (gather), returns memory reservations to the budget, closes children.
  /// Idempotent; safe mid-iteration (the cancellation path) and after
  /// exhaustion. The plan can be Open()ed again afterwards.
  Status Close();

  virtual const rel::Schema& OutputSchema() const = 0;
  virtual std::string Name() const = 0;

  /// Direct child operators, probe-side first. Drives trace/metrics
  /// propagation and EXPLAIN's plan rendering.
  virtual std::vector<Operator*> Children() { return {}; }

  /// Best-effort cardinality hint (0 = unknown); consumers use it to
  /// reserve materialization buffers (e.g. the hash-join build vector).
  virtual size_t EstimatedRows() const { return 0; }

  /// Cost-based planner's output-cardinality estimate for this operator.
  /// Stamped by the optimizer when it planned the query; EXPLAIN [ANALYZE]
  /// reads PlannerEstimate(), which falls back to the operator's own
  /// structural hint when the optimizer did not run.
  void SetPlannerEstimate(size_t rows) { planner_est_ = rows; }
  size_t PlannerEstimate() const {
    return planner_est_ != kNoPlannerEstimate ? planner_est_ : EstimatedRows();
  }
  bool HasPlannerEstimate() const { return planner_est_ != kNoPlannerEstimate; }

  /// Installs `sink` on this operator and its children.
  virtual void SetTraceSink(TraceSink sink) {
    for (Operator* child : Children()) child->SetTraceSink(sink);
    trace_ = std::move(sink);
  }

  /// Installs the per-statement lifecycle context (cancellation, deadline,
  /// memory budget) on this subtree. shared_ptr because retained plans
  /// (zoom-in re-execution) outlive the statement that created them.
  /// Operators that own sub-plans outside Children() (shared build states,
  /// worker pipelines) override to forward there too.
  virtual void SetQueryContext(std::shared_ptr<QueryContext> context) {
    for (Operator* child : Children()) child->SetQueryContext(context);
    context_ = std::move(context);
    reservation_.Attach(context_ != nullptr ? &context_->budget() : nullptr,
                        Name());
  }

  QueryContext* query_context() const { return context_.get(); }

  /// The owning shared_ptr, so Engine::Execute can install a snapshot on a
  /// plan's existing context (or detect the plan has none yet).
  std::shared_ptr<QueryContext> shared_query_context() const { return context_; }

  /// Turns wall-clock accounting on/off for this subtree.
  void SetMetricsEnabled(bool enabled) {
    for (Operator* child : Children()) child->SetMetricsEnabled(enabled);
    metrics_enabled_ = enabled;
  }

  /// Zeroes the counters of this subtree (e.g. before a re-execution).
  void ResetMetricsTree() {
    for (Operator* child : Children()) child->ResetMetricsTree();
    metrics_ = OperatorMetrics{};
  }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(core::AnnotatedTuple* out) = 0;
  /// Default adapter: packs up to kDefaultBatchSize NextImpl tuples.
  virtual Result<bool> NextBatchImpl(core::AnnotatedBatch* out);
  /// Operator-specific teardown; the Close() wrapper handles children and
  /// the memory reservation.
  virtual Status CloseImpl() { return Status::OK(); }

  /// Polls the query context for cancellation / deadline expiry. The
  /// Open/NextBatch wrappers call this at every boundary; tuple-at-a-time
  /// drivers sample every kInterruptStride-th Next() call.
  Status CheckInterrupt() {
    if (context_ == nullptr) return Status::OK();
    ++metrics_.cancel_checks;
    return context_->CheckInterrupt();
  }

  /// Records `bytes` of materialized state against the statement budget.
  /// kResourceExhausted (naming this operator) once the budget is blown.
  Status ChargeMemory(size_t bytes) {
    Status status = reservation_.Charge(bytes);
    if (reservation_.peak() > metrics_.mem_peak) {
      metrics_.mem_peak = reservation_.peak();
    }
    return status;
  }

  /// Returns every charged byte to the budget (state was dropped/reset).
  void ReleaseMemory() { reservation_.ReleaseAll(); }

  void Trace(const core::AnnotatedTuple& tuple) const {
    if (trace_) trace_(Name(), tuple);
  }

  /// Next() wrapper polls the context once per this many calls so the
  /// tuple-at-a-time path stays clock-free between samples.
  static constexpr uint64_t kInterruptStride = 64;

  TraceSink trace_;
  OperatorMetrics metrics_;
  bool metrics_enabled_ = false;
  std::shared_ptr<QueryContext> context_;
  MemoryReservation reservation_;
  uint64_t next_calls_ = 0;  // Next() invocations since Open, for the stride.

 private:
  static constexpr size_t kNoPlannerEstimate = static_cast<size_t>(-1);
  size_t planner_est_ = kNoPlannerEstimate;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_OPERATOR_H_
