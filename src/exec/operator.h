// Iterator interface over AnnotatedTuples, offered at two granularities:
// the classic Volcano tuple-at-a-time Next() and a batch-at-a-time
// NextBatch() used by the morsel-driven parallel executor (a default
// adapter turns any tuple-at-a-time operator into a batch producer). Every
// operator implements the extended summary-propagation semantics of its
// relational counterpart (Section 2.1).
//
// The public Open/Next/NextBatch entry points are non-virtual wrappers
// (operators override OpenImpl/NextImpl/NextBatchImpl): the wrapper layer
// maintains the per-operator OperatorMetrics counters surfaced through
// EXPLAIN ANALYZE and, when metrics are enabled, per-call wall-clock time.
// Operators optionally report each emitted tuple to a trace sink — the
// demo's "under-the-hood execution" feature (Section 3, demonstration
// feature 3).

#ifndef INSIGHTNOTES_EXEC_OPERATOR_H_
#define INSIGHTNOTES_EXEC_OPERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/annotated_tuple.h"
#include "rel/schema.h"

namespace insightnotes::exec {

/// Callback invoked per emitted tuple: (operator name, tuple).
using TraceSink = std::function<void(const std::string&, const core::AnnotatedTuple&)>;

/// Tuples the default NextBatch adapter packs into one batch.
inline constexpr size_t kDefaultBatchSize = 256;

/// Execution counters maintained by the Open/Next/NextBatch wrappers and
/// the operators themselves. Counters are always on (plain increments);
/// wall-clock time is only accumulated while metrics are enabled (see
/// Operator::SetMetricsEnabled) to keep the hot path timer-free.
struct OperatorMetrics {
  uint64_t rows_out = 0;          // Tuples emitted through Next/NextBatch.
  uint64_t batches_out = 0;       // Batches emitted through NextBatch.
  uint64_t wall_ns = 0;           // Inclusive time in Open/Next/NextBatch.
  uint64_t morsels = 0;           // Morsel scans: morsels processed.
  uint64_t build_partitions = 0;  // Hash joins: partitions in the build.
  uint64_t partial_groups = 0;    // Partial agg/distinct/sort: local states built.
  uint64_t merge_ns = 0;          // Merge operators: time folding partial states.
  uint64_t rows_pruned = 0;       // LIMIT pushdown: rows provably outside the
                                  // result, dropped before materialization.
  uint64_t bound_updates = 0;     // Top-k sort: shared k-th-candidate tightenings.
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children) for iteration. Must be called
  /// before Next/NextBatch; calling it again restarts the iteration.
  Status Open();

  /// Produces the next tuple into `out`. Returns false when exhausted.
  Result<bool> Next(core::AnnotatedTuple* out);

  /// Produces the next batch into `out` (cleared first). Returns false when
  /// exhausted. A returned batch may be *empty* (e.g. a fully filtered
  /// morsel): emptiness does not signal exhaustion, only `false` does.
  Result<bool> NextBatch(core::AnnotatedBatch* out);

  virtual const rel::Schema& OutputSchema() const = 0;
  virtual std::string Name() const = 0;

  /// Direct child operators, probe-side first. Drives trace/metrics
  /// propagation and EXPLAIN's plan rendering.
  virtual std::vector<Operator*> Children() { return {}; }

  /// Best-effort cardinality hint (0 = unknown); consumers use it to
  /// reserve materialization buffers (e.g. the hash-join build vector).
  virtual size_t EstimatedRows() const { return 0; }

  /// Installs `sink` on this operator and its children.
  virtual void SetTraceSink(TraceSink sink) {
    for (Operator* child : Children()) child->SetTraceSink(sink);
    trace_ = std::move(sink);
  }

  /// Turns wall-clock accounting on/off for this subtree.
  void SetMetricsEnabled(bool enabled) {
    for (Operator* child : Children()) child->SetMetricsEnabled(enabled);
    metrics_enabled_ = enabled;
  }

  /// Zeroes the counters of this subtree (e.g. before a re-execution).
  void ResetMetricsTree() {
    for (Operator* child : Children()) child->ResetMetricsTree();
    metrics_ = OperatorMetrics{};
  }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(core::AnnotatedTuple* out) = 0;
  /// Default adapter: packs up to kDefaultBatchSize NextImpl tuples.
  virtual Result<bool> NextBatchImpl(core::AnnotatedBatch* out);

  void Trace(const core::AnnotatedTuple& tuple) const {
    if (trace_) trace_(Name(), tuple);
  }

  TraceSink trace_;
  OperatorMetrics metrics_;
  bool metrics_enabled_ = false;
};

}  // namespace insightnotes::exec

#endif  // INSIGHTNOTES_EXEC_OPERATOR_H_
