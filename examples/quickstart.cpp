// Quickstart: the Figure 1 flow in ~60 lines of API calls.
//
//   1. Create a table and a few summary instances (classifier, cluster,
//      snippet) and link them.
//   2. Add raw annotations; summaries maintain incrementally.
//   3. Query with summary propagation, then zoom in to raw annotations.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "sql/session.h"

using namespace insightnotes;

int main() {
  core::Engine engine;
  if (Status s = engine.Init(); !s.ok()) {
    std::cerr << "engine init failed: " << s << "\n";
    return 1;
  }
  sql::SqlSession session(&engine);

  auto run = [&](const std::string& statement) {
    auto out = session.Execute(statement);
    if (!out.ok()) {
      std::cerr << "error: " << out.status() << "\n  in: " << statement << "\n";
      std::exit(1);
    }
    return std::move(*out);
  };

  // --- Schema, summary instances, links (Figure 4's hierarchy) -------------
  run("CREATE TABLE birds (id BIGINT, name TEXT, sci_name TEXT, weight DOUBLE)");
  run("CREATE SUMMARY INSTANCE ClassBird1 CLASSIFIER LABELS "
      "('Behavior', 'Disease', 'Anatomy', 'Other')");
  run("TRAIN SUMMARY ClassBird1 LABEL 'Behavior' WITH "
      "'eating stonewort foraging flying migration nesting'");
  run("TRAIN SUMMARY ClassBird1 LABEL 'Disease' WITH "
      "'influenza infection sick parasite lesions'");
  run("TRAIN SUMMARY ClassBird1 LABEL 'Anatomy' WITH "
      "'size weight wingspan beak feathers large'");
  run("TRAIN SUMMARY ClassBird1 LABEL 'Other' WITH 'article wikipedia photo link'");
  run("CREATE SUMMARY INSTANCE SimCluster CLUSTER THRESHOLD 0.3");
  run("CREATE SUMMARY INSTANCE TextSummary1 SNIPPET");
  run("LINK SUMMARY ClassBird1 TO birds");
  run("LINK SUMMARY SimCluster TO birds");
  run("LINK SUMMARY TextSummary1 TO birds");

  // --- Data and raw annotations ---------------------------------------------
  run("INSERT INTO birds VALUES (1, 'Swan Goose', 'Anser cygnoides', 3.2)");
  run("ANNOTATE birds ROW 0 TEXT 'Large one having size around 3 kilograms' "
      "AUTHOR 'alice'");
  run("ANNOTATE birds ROW 0 TEXT 'found eating stonewort near the shore' "
      "AUTHOR 'bob'");
  run("ANNOTATE birds ROW 0 TEXT 'observed foraging at dusk' AUTHOR 'carol'");
  run("ANNOTATE birds ROW 0 COLUMNS (weight) TEXT 'size seems wrong' AUTHOR 'dave'");
  run("ANNOTATE birds ROW 0 TEXT "
      "'The swan goose is a large goose with a long neck. It breeds in Mongolia "
      "and winters in eastern China. The wild population has declined sharply.' "
      "AS DOCUMENT TITLE 'Wikipedia article'");

  // --- Query: summaries ride along (Figure 1, R.H.S) -------------------------
  auto result = run("SELECT * FROM birds");
  std::cout << "=== Query result with annotation summaries ===\n"
            << sql::FormatResult(result.result) << "\n";

  // --- Zoom in: back to the raw annotations (Figure 3) ----------------------
  auto zoom = run("ZOOMIN REFERENCE QID " + std::to_string(result.result.qid) +
                  " ON ClassBird1 INDEX 1");
  std::cout << "=== Zoom-in: raw 'Behavior' annotations ===\n"
            << sql::FormatZoomIn(zoom.zoom);

  auto article = run("ZOOMIN REFERENCE QID " + std::to_string(result.result.qid) +
                     " ON TextSummary1 INDEX 1");
  std::cout << "\n=== Zoom-in: the attached article behind the snippet ===\n"
            << sql::FormatZoomIn(article.zoom);
  return 0;
}
