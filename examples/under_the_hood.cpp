// "Under-the-Hood Execution" (Section 3, demonstration feature 3): runs the
// exact Figure 2 query
//
//   SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2
//
// and prints every operator's intermediate tuples with their attached
// summary objects, visualizing how the bottom projections trim annotation
// effects, how the selection passes summaries through, and how the join
// merges counterpart summary objects without double counting.
//
// Build & run:  ./build/examples/under_the_hood

#include <iostream>

#include "core/engine.h"
#include "sql/session.h"

using namespace insightnotes;

namespace {

void Die(const Status& status) {
  std::cerr << "error: " << status << "\n";
  std::exit(1);
}

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) Die(status);
}

}  // namespace

int main() {
  core::Engine engine;
  Check(engine.Init());

  // --- Figure 2's tables and instances --------------------------------------
  Check(engine
            .CreateTable("R", rel::Schema({{"a", rel::ValueType::kInt64, "R"},
                                           {"b", rel::ValueType::kInt64, "R"},
                                           {"c", rel::ValueType::kString, "R"},
                                           {"d", rel::ValueType::kString, "R"}}))
            .status());
  Check(engine
            .CreateTable("S", rel::Schema({{"x", rel::ValueType::kInt64, "S"},
                                           {"y", rel::ValueType::kString, "S"},
                                           {"z", rel::ValueType::kString, "S"}}))
            .status());
  Check(engine.Insert("R", rel::Tuple({rel::Value(int64_t{1}), rel::Value(int64_t{2}),
                                       rel::Value("c0"), rel::Value("d0")}))
            .status());
  Check(engine.Insert("S", rel::Tuple({rel::Value(int64_t{1}), rel::Value("y0"),
                                       rel::Value("z0")}))
            .status());

  auto class1 = core::SummaryInstance::MakeClassifier(
      "ClassBird1", {"Behavior", "Disease", "Anatomy", "Other"});
  Check(class1->classifier()->Train(0, "eating stonewort foraging flying"));
  Check(class1->classifier()->Train(1, "influenza infection sick parasite"));
  Check(class1->classifier()->Train(2, "size weight wingspan beak"));
  Check(class1->classifier()->Train(3, "article wikipedia photo"));
  Check(engine.RegisterInstance(std::move(class1)));

  auto class2 = core::SummaryInstance::MakeClassifier(
      "ClassBird2", {"Provenance", "Comment", "Question"});
  Check(class2->classifier()->Train(0, "produced experiment lineage derived"));
  Check(class2->classifier()->Train(1, "observed noted remark general"));
  Check(class2->classifier()->Train(2, "why unclear question wondering"));
  Check(engine.RegisterInstance(std::move(class2)));
  Check(engine.RegisterInstance(core::SummaryInstance::MakeCluster("SimCluster", 0.3)));
  mining::SnippetOptions snippet_opts;
  snippet_opts.max_sentences = 1;
  snippet_opts.max_chars = 80;
  Check(engine.RegisterInstance(
      core::SummaryInstance::MakeSnippet("TextSummary1", snippet_opts)));

  Check(engine.LinkInstance("ClassBird1", "R"));
  Check(engine.LinkInstance("ClassBird2", "R"));
  Check(engine.LinkInstance("ClassBird2", "S"));
  Check(engine.LinkInstance("SimCluster", "R"));
  Check(engine.LinkInstance("SimCluster", "S"));
  Check(engine.LinkInstance("TextSummary1", "R"));

  // --- Annotations (mirroring Figure 2's coverage mix) -----------------------
  auto annotate = [&](const std::string& table, std::vector<size_t> columns,
                      const std::string& body, ann::AnnotationKind kind,
                      const std::string& title) {
    core::AnnotateSpec spec;
    spec.table = table;
    spec.row = 0;
    spec.columns = std::move(columns);
    spec.body = body;
    spec.kind = kind;
    spec.title = title;
    spec.author = "demo";
    return Check(engine.Annotate(spec));
  };
  annotate("R", {0}, "found eating stonewort near the shore",
           ann::AnnotationKind::kComment, "");
  annotate("R", {}, "observed flying in the region yesterday",
           ann::AnnotationKind::kComment, "");
  annotate("R", {2}, "large one having size around three kilograms",
           ann::AnnotationKind::kComment, "");
  annotate("R", {3}, "signs of influenza infection on the beak",
           ann::AnnotationKind::kComment, "");
  annotate("R", {2},
           "The swan goose breeds in Mongolia. It winters in eastern China.",
           ann::AnnotationKind::kDocument, "Wikipedia article");
  annotate("R", {0}, "Experiment E produced this reading.",
           ann::AnnotationKind::kDocument, "Experiment E");
  auto shared = annotate("R", {}, "produced by experiment lineage pipeline",
                         ann::AnnotationKind::kComment, "");
  Check(engine.AttachAnnotation(shared, "S", 0));
  annotate("S", {0}, "why is this measurement so high",
           ann::AnnotationKind::kComment, "");
  annotate("S", {1}, "this column is derived from provenance records",
           ann::AnnotationKind::kComment, "");

  // --- Execute with the trace sink on ---------------------------------------
  sql::SqlSession session(&engine);
  std::vector<core::TraceEvent> trace;
  auto out = Check(session.Execute(
      "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2;", &trace));

  std::cout << "Query: SELECT r.a, r.b, s.z FROM R r, S s "
               "WHERE r.a = s.x AND r.b = 2\n\n";
  std::cout << "=== Operator-by-operator tuple flow (Figure 2) ===\n";
  std::string last_op;
  for (const auto& event : trace) {
    if (event.op != last_op) {
      std::cout << "\n[" << event.op << "]\n";
      last_op = event.op;
    }
    std::cout << "  " << event.tuple << "\n";
    if (!event.summaries.empty()) {
      std::cout << "    " << event.summaries << "\n";
    }
  }
  std::cout << "\n=== Final result ===\n" << sql::FormatResult(out.result);
  std::cout << "\nNote how:\n"
               "  * the projection below the join removed the effect of the\n"
               "    annotations on r.c, r.d and s.y (counts decrement, the\n"
               "    Wikipedia snippet disappears, cluster groups shrink);\n"
               "  * the selection on r.b left summaries untouched;\n"
               "  * the join merged the two ClassBird2/SimCluster objects,\n"
               "    counting the shared provenance annotation once.\n";
  return 0;
}
