// Curation pipeline example: the biological-database scenario of
// Section 2.3 — gene records with {FunctionPrediction, Provenance, Comment}
// classification, *shared* provenance annotations attached to every tuple an
// experiment produced (exercising the AnnotationInvariant/DataInvariant
// summarize-once optimization), and the archive workflow for annotations
// proven wrong.
//
// Build & run:  ./build/examples/curation_pipeline

#include <iostream>

#include "core/engine.h"
#include "sql/session.h"

using namespace insightnotes;

namespace {
template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}
}  // namespace

int main() {
  core::Engine engine;
  Check(engine.Init());
  sql::SqlSession session(&engine);
  auto run = [&](const std::string& statement) {
    return Check(session.Execute(statement));
  };

  // --- Gene table and the biology-flavored classifier ------------------------
  run("CREATE TABLE genes (gene_id BIGINT, symbol TEXT, organism TEXT, "
      "expression DOUBLE)");
  run("CREATE SUMMARY INSTANCE GeneClass CLASSIFIER LABELS "
      "('FunctionPrediction', 'Provenance', 'Comment')");
  run("TRAIN SUMMARY GeneClass LABEL 'FunctionPrediction' WITH "
      "'predicted function binding domain kinase pathway homology'");
  run("TRAIN SUMMARY GeneClass LABEL 'Provenance' WITH "
      "'produced experiment pipeline derived sequencing run batch'");
  run("TRAIN SUMMARY GeneClass LABEL 'Comment' WITH "
      "'note remark observed interesting needs review'");
  run("CREATE SUMMARY INSTANCE GeneClusters CLUSTER THRESHOLD 0.35");
  run("LINK SUMMARY GeneClass TO genes");
  run("LINK SUMMARY GeneClusters TO genes");

  run("INSERT INTO genes VALUES (1, 'BRCA1', 'H. sapiens', 7.25), "
      "(2, 'TP53', 'H. sapiens', 12.5), (3, 'MYC', 'H. sapiens', 30.1), "
      "(4, 'EGFR', 'H. sapiens', 5.75)");

  // --- A shared provenance annotation attached to every tuple the
  //     sequencing run produced (summarize-once case) -----------------------
  core::AnnotateSpec provenance;
  provenance.table = "genes";
  provenance.row = 0;
  provenance.body = "produced by sequencing experiment batch 7 pipeline v2";
  provenance.author = "pipeline";
  auto shared_id = Check(engine.Annotate(provenance));
  for (rel::RowId row = 1; row < 4; ++row) {
    Check(engine.AttachAnnotation(shared_id, "genes", row));
  }
  auto instance = Check(engine.summaries()->GetInstance("GeneClass"));
  std::cout << "Shared provenance annotation summarized once, reused "
            << instance->cache_hits() << " times (cache misses: "
            << instance->cache_misses() << ")\n\n";

  // --- Per-gene curation annotations ----------------------------------------
  run("ANNOTATE genes ROW 0 TEXT 'predicted function: DNA repair binding domain' "
      "AUTHOR 'curatorA'");
  run("ANNOTATE genes ROW 0 TEXT 'needs review: expression value looks inflated' "
      "AUTHOR 'curatorB'");
  auto wrong = Check(engine.Annotate([&] {
    core::AnnotateSpec spec;
    spec.table = "genes";
    spec.row = 0;
    spec.columns = {3};  // The expression column.
    spec.body = "predicted kinase pathway involvement with strong homology";
    spec.author = "legacy-import";
    return spec;
  }()));

  auto before = run("SELECT gene_id, symbol, expression FROM genes WHERE gene_id = 1");
  std::cout << "=== Before curation ===\n" << sql::FormatResult(before.result) << "\n";

  // --- Curation: the legacy prediction is proven wrong -> archive it --------
  Check(engine.ArchiveAnnotation(wrong));
  auto after = run("SELECT gene_id, symbol, expression FROM genes WHERE gene_id = 1");
  std::cout << "=== After archiving the disproven prediction ===\n"
            << sql::FormatResult(after.result) << "\n";

  // --- Zoom in to audit what remains under FunctionPrediction ---------------
  auto zoom = run("ZOOMIN REFERENCE QID " + std::to_string(after.result.qid) +
                  " ON GeneClass INDEX 1");
  std::cout << "=== Audit: remaining FunctionPrediction annotations ===\n"
            << sql::FormatZoomIn(zoom.zoom);

  // Archived annotations stay retrievable for audit via the raw store.
  auto archived = Check(engine.annotations()->Get(wrong));
  std::cout << "\nArchived (still auditable): A" << archived.id << " '"
            << archived.body << "' archived=" << std::boolalpha << archived.archived
            << "\n";
  return 0;
}
