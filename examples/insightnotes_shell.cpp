// InsightNotes interactive shell — the CLI stand-in for the Excel-based
// InsightNotesGate frontend of Figure 5. Supports the full SQL dialect
// (SELECT / INSERT / CREATE TABLE / ANNOTATE / ZOOMIN / summary DDL) plus
// shell commands:
//
//   .help                 command overview
//   .demo                 load the AKN-style ornithological demo workload
//   .tables               list tables
//   .instances            list summary instances
//   .trace on|off         toggle under-the-hood operator tracing
//   .cache                zoom-in cache statistics
//   .quit
//
// Build & run:  ./build/examples/insightnotes_shell
//               [--db path.db [--open-existing]]
// With --db the engine is file-backed (WAL + page file + .idx index
// file next to the path); --open-existing replays the WAL and adopts
// committed persistent indexes on startup, so annotations — and CREATE
// INDEX — survive a .quit/restart cycle.
// Try:          .demo
//               SELECT id, name, region FROM birds WHERE id < 3;
//               ZOOMIN REFERENCE QID 101 WHERE id = 0 ON ClassBird1 INDEX 1;

#include <cstring>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"
#include "sql/session.h"
#include "workload/workload.h"

using namespace insightnotes;

namespace {

void PrintHelp() {
  std::cout <<
      "SQL statements (terminate with ';'):\n"
      "  SELECT [DISTINCT] cols FROM t [alias], ... [WHERE ...] [GROUP BY ...]\n"
      "         [ORDER BY ...] [LIMIT n];\n"
      "    WHERE/ORDER BY may use SUMMARY_COUNT(instance[, 'label']) to\n"
      "    filter/sort by summary contents;\n"
      "  CREATE TABLE t (col BIGINT|DOUBLE|TEXT, ...);\n"
      "  INSERT INTO t VALUES (...), (...);\n"
      "  ANNOTATE t ROW n [COLUMNS (c, ...)] TEXT 'body' [AUTHOR 'a']\n"
      "           [AS DOCUMENT [TITLE 't']];\n"
      "  ZOOMIN REFERENCE QID n [WHERE pred] ON instance INDEX k;\n"
      "  CREATE SUMMARY INSTANCE name CLASSIFIER LABELS ('a', ...)\n"
      "                              | CLUSTER [THRESHOLD x] | SNIPPET;\n"
      "  TRAIN SUMMARY name LABEL 'l' WITH 'examples...';\n"
      "  LINK SUMMARY name TO t;   UNLINK SUMMARY name FROM t;\n"
      "  ANALYZE t;                collect optimizer statistics\n"
      "  CREATE INDEX ON t(col);   enable index-backed access paths\n"
      "  SET OPTIMIZER = on|off;   toggle cost-based planning\n"
      "Shell commands: .help .demo .tables .instances .trace on|off .cache .quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  core::EngineOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      options.db_path = argv[++i];
    } else if (std::strcmp(argv[i], "--open-existing") == 0) {
      options.open_existing = true;
    } else {
      std::cerr << "usage: insightnotes_shell [--db path.db [--open-existing]]\n";
      return 1;
    }
  }
  core::Engine engine(options);
  if (Status s = engine.Init(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (options.open_existing) {
    const auto& report = engine.recovery();
    std::cout << "recovered " << report.wal_records_replayed << " WAL record(s), "
              << report.indexes_recovered << " persistent index(es)\n";
  }
  sql::SqlSession session(&engine);
  bool tracing = false;

  std::cout << "InsightNotes shell — type .help for commands, .demo for sample data\n";
  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "insightnotes> " : "          ...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;

    if (buffer.empty() && trimmed[0] == '.') {
      if (trimmed == ".quit" || trimmed == ".exit") break;
      if (trimmed == ".help") {
        PrintHelp();
      } else if (trimmed == ".demo") {
        workload::WorkloadConfig config;
        config.num_species = 30;
        config.annotations_per_tuple = 40;
        workload::WorkloadBuilder builder(config);
        auto stats = builder.Build(&engine);
        if (!stats.ok()) {
          std::cout << "demo load failed: " << stats.status() << "\n";
        } else {
          std::cout << "loaded 'birds': " << stats->num_rows << " rows, "
                    << stats->num_annotations << " annotations, instances "
                    << "ClassBird1/ClassBird2/SimCluster/TextSummary1 linked\n";
        }
      } else if (trimmed == ".tables") {
        for (const auto& name : engine.catalog()->TableNames()) {
          auto table = engine.catalog()->GetTable(name);
          std::cout << "  " << name << " " << (*table)->schema().ToString() << "  ("
                    << (*table)->NumRows() << " rows)\n";
        }
      } else if (trimmed == ".instances") {
        for (const auto& name : engine.summaries()->InstanceNames()) {
          auto instance = engine.summaries()->GetInstance(name);
          std::cout << "  " << name << " ["
                    << core::SummaryTypeKindToString((*instance)->type()) << "]\n";
        }
      } else if (trimmed == ".trace on") {
        tracing = true;
        std::cout << "under-the-hood tracing ON\n";
      } else if (trimmed == ".trace off") {
        tracing = false;
        std::cout << "under-the-hood tracing OFF\n";
      } else if (trimmed == ".cache") {
        const auto& stats = engine.cache()->stats();
        std::cout << "policy=" << core::CachePolicyToString(engine.cache()->policy())
                  << " budget=" << engine.cache()->budget_bytes()
                  << "B used=" << stats.bytes_used << "B hits=" << stats.hits
                  << " misses=" << stats.misses << " evictions=" << stats.evictions
                  << "\n";
      } else {
        std::cout << "unknown command; try .help\n";
      }
      continue;
    }

    buffer += std::string(trimmed);
    if (buffer.back() != ';') {
      buffer += " ";
      continue;  // Multi-line statement.
    }
    std::vector<core::TraceEvent> trace;
    auto out = session.Execute(buffer, tracing ? &trace : nullptr);
    buffer.clear();
    if (!out.ok()) {
      std::cout << "error: " << out.status() << "\n";
      continue;
    }
    if (tracing) {
      std::string last_op;
      for (const auto& event : trace) {
        if (event.op != last_op) {
          std::cout << "[" << event.op << "]\n";
          last_op = event.op;
        }
        std::cout << "  " << event.tuple
                  << (event.summaries.empty() ? "" : "  " + event.summaries) << "\n";
      }
    }
    switch (out->kind) {
      case sql::ExecutionOutput::Kind::kRows:
        std::cout << sql::FormatResult(out->result);
        break;
      case sql::ExecutionOutput::Kind::kZoomIn:
        std::cout << sql::FormatZoomIn(out->zoom);
        break;
      case sql::ExecutionOutput::Kind::kMessage:
        std::cout << out->message << "\n";
        break;
    }
  }
  return 0;
}
