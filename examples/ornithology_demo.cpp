// The full demonstration scenario of Section 3: an AKN-style ornithological
// database with thousands of birdwatcher annotations, summary-aware SQL over
// it, interactive-style zoom-ins, extensibility (linking a new instance at
// runtime) and the under-the-hood statistics the demo would visualize.
//
// Build & run:  ./build/examples/ornithology_demo [num_species] [ann_per_tuple]

#include <cstdlib>
#include <iostream>

#include "sql/session.h"
#include "workload/workload.h"

using namespace insightnotes;

int main(int argc, char** argv) {
  size_t num_species = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  size_t per_tuple = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;

  core::Engine engine;
  if (Status s = engine.Init(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  std::cout << "Building AKN-style workload: " << num_species << " species, ~"
            << per_tuple << " annotations per tuple...\n";
  workload::WorkloadConfig config;
  config.num_species = num_species;
  config.annotations_per_tuple = per_tuple;
  workload::WorkloadBuilder builder(config);
  auto stats = builder.Build(&engine);
  if (!stats.ok()) {
    std::cerr << stats.status() << "\n";
    return 1;
  }
  std::cout << "  rows=" << stats->num_rows
            << " annotations=" << stats->num_annotations
            << " attachments=" << stats->num_attachments
            << " documents=" << stats->num_documents
            << " shared=" << stats->num_shared << "\n\n";

  sql::SqlSession session(&engine);
  auto run = [&](const std::string& statement) {
    auto out = session.Execute(statement);
    if (!out.ok()) {
      std::cerr << "error: " << out.status() << "\n  in: " << statement << "\n";
      std::exit(1);
    }
    return std::move(*out);
  };

  // 1. Query the heavily annotated head of the Zipf distribution: instead
  //    of hundreds of raw annotations, each tuple reports 4 summary objects.
  std::cout << "=== Heavily annotated species (summaries, not 100s of raw notes) ===\n";
  auto result = run("SELECT id, name, region, weight FROM birds WHERE id < 3");
  std::cout << sql::FormatResult(result.result) << "\n";

  // 2. Zoom into the disease-related annotations of the top species
  //    (Figure 3's interaction).
  std::cout << "=== ZoomIn: disease annotations on species 0 ===\n";
  auto zoom = run("ZOOMIN REFERENCE QID " + std::to_string(result.result.qid) +
                  " WHERE id = 0 ON ClassBird1 INDEX 2");
  auto rendered = sql::FormatZoomIn(zoom.zoom);
  // Large outputs: show the head.
  std::cout << rendered.substr(0, 1200)
            << (rendered.size() > 1200 ? "...\n" : "") << "\n";

  // 3. Summary-based predicates (Section 2.1): find the species with the
  //    most disease reports — no raw annotation access, the filter and the
  //    sort read the classifier summaries directly.
  std::cout << "=== Species ranked by disease-related annotations ===\n";
  auto sick = run(
      "SELECT id, name FROM birds "
      "WHERE SUMMARY_COUNT(ClassBird1, 'Disease') >= 1 "
      "ORDER BY SUMMARY_COUNT(ClassBird1, 'Disease') DESC LIMIT 3");
  std::cout << sql::FormatResult(sick.result, /*show_summaries=*/false) << "\n";

  // 4. Aggregation with summary union: per-family behavior profile.
  std::cout << "=== Families by population (summaries merged per group) ===\n";
  auto grouped = run(
      "SELECT family, COUNT(*) AS species_count, SUM(population) AS total_pop "
      "FROM birds GROUP BY family ORDER BY total_pop DESC LIMIT 5");
  std::cout << sql::FormatResult(grouped.result) << "\n";

  // 5. Extensibility: link a new Cluster instance with a stricter threshold
  //    at runtime — summaries of subsequent queries change accordingly.
  std::cout << "=== Extensibility: linking a stricter cluster instance ===\n";
  run("CREATE SUMMARY INSTANCE TightCluster CLUSTER THRESHOLD 0.7");
  run("LINK SUMMARY TightCluster TO birds");
  auto after = run("SELECT id, name FROM birds WHERE id = 0");
  std::cout << sql::FormatResult(after.result) << "\n";

  // 6. Cache behavior: re-zooming is served from the RCO cache.
  auto rezoom = run("ZOOMIN REFERENCE QID " + std::to_string(result.result.qid) +
                    " WHERE id = 0 ON ClassBird1 INDEX 1");
  std::cout << "=== Cache stats after repeated zoom-ins ===\n";
  const auto& cache_stats = engine.cache()->stats();
  std::cout << "policy=" << core::CachePolicyToString(engine.cache()->policy())
            << " hits=" << cache_stats.hits << " misses=" << cache_stats.misses
            << " bytes=" << cache_stats.bytes_used
            << " (last zoom " << (rezoom.zoom.served_from_cache ? "HIT" : "MISS")
            << ")\n";
  return 0;
}
